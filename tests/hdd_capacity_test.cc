/**
 * @file
 * Validation of the capacity/IDR model against the paper's Table 1 drives,
 * plus unit tests of the derived quantities.
 */
#include <gtest/gtest.h>

#include "hdd/capacity.h"
#include "hdd/drive_catalog.h"
#include "util/error.h"

namespace hh = hddtherm::hdd;
namespace hu = hddtherm::util;

TEST(Capacity, BreakdownOrdering)
{
    const auto drive = hh::findDrive("Seagate Cheetah 15K.3");
    ASSERT_TRUE(drive.has_value());
    const auto layout = drive->layout();
    const auto cap = hh::computeCapacity(layout);
    EXPECT_GT(cap.rawGB, cap.zbrGB);
    EXPECT_GT(cap.zbrGB, cap.userGB);
    EXPECT_GT(cap.userGB, 0.0);
    EXPECT_GT(cap.zbrLossFraction, 0.0);
    EXPECT_LT(cap.zbrLossFraction, 0.2);
}

TEST(Capacity, Cheetah15k3MatchesPaperModel)
{
    const auto drive = hh::findDrive("Seagate Cheetah 15K.3");
    ASSERT_TRUE(drive.has_value());
    const auto cap = hh::computeCapacity(drive->layout());
    // The paper's model computes 74.8 GB for this drive; our reading of the
    // (partly under-specified) derating lands within 10%.
    EXPECT_NEAR(cap.userGB, drive->paperModelCapacityGB,
                0.10 * drive->paperModelCapacityGB);
}

TEST(Capacity, Cheetah15k3IdrMatchesPaperModel)
{
    const auto drive = hh::findDrive("Seagate Cheetah 15K.3");
    ASSERT_TRUE(drive.has_value());
    const double idr = hh::internalDataRateMBps(drive->layout(), drive->rpm);
    // The paper's model computes 114.4 MB/s for this drive.
    EXPECT_NEAR(idr, drive->paperModelIdrMBps,
                0.03 * drive->paperModelIdrMBps);
}

TEST(Capacity, RpmForDataRateInvertsIdr)
{
    const auto drive = hh::findDrive("Seagate Cheetah X15");
    ASSERT_TRUE(drive.has_value());
    const auto layout = drive->layout();
    const double idr = hh::internalDataRateMBps(layout, 15000.0);
    EXPECT_NEAR(hh::rpmForDataRate(layout, idr), 15000.0, 1e-6);
}

TEST(Capacity, IdrScalesLinearlyWithRpm)
{
    const auto drive = hh::findDrive("Seagate Cheetah X15");
    ASSERT_TRUE(drive.has_value());
    const auto layout = drive->layout();
    const double idr1 = hh::internalDataRateMBps(layout, 10000.0);
    const double idr2 = hh::internalDataRateMBps(layout, 20000.0);
    EXPECT_NEAR(idr2, 2.0 * idr1, 1e-9);
}

TEST(Capacity, RejectsBadArguments)
{
    const auto drive = hh::findDrive("Seagate Cheetah X15");
    ASSERT_TRUE(drive.has_value());
    const auto layout = drive->layout();
    EXPECT_THROW(hh::internalDataRateMBps(layout, 0.0), hu::ModelError);
    EXPECT_THROW(hh::rpmForDataRate(layout, -5.0), hu::ModelError);
}

TEST(Catalog, HasThirteenDrives)
{
    EXPECT_EQ(hh::table1Drives().size(), 13u);
    EXPECT_EQ(hh::table2Ratings().size(), 4u);
}

TEST(Catalog, FindDrive)
{
    EXPECT_TRUE(hh::findDrive("Quantum Atlas 10K").has_value());
    EXPECT_FALSE(hh::findDrive("No Such Drive").has_value());
}

/// Validation sweep over every Table 1 drive: the reproduced model must
/// stay within the paper's own error envelope of its published model
/// predictions (the paper reports <=12% capacity and <=15% IDR error vs
/// datasheets; we hold our model to 15% of the paper's model values, which
/// absorbs the paper's unstated rounding conventions).
class Table1Sweep : public ::testing::TestWithParam<hh::DriveSpec>
{};

TEST_P(Table1Sweep, CapacityNearPaperModel)
{
    const auto& drive = GetParam();
    const auto cap = hh::computeCapacity(drive.layout());
    EXPECT_NEAR(cap.userGB, drive.paperModelCapacityGB,
                0.15 * drive.paperModelCapacityGB)
        << drive.model;
}

TEST_P(Table1Sweep, IdrNearPaperModel)
{
    const auto& drive = GetParam();
    const double idr = hh::internalDataRateMBps(drive.layout(), drive.rpm);
    // 12 of 13 drives land within 10% of the paper's model; the Ultrastar
    // 36Z15 (whose paper-model value of 72.1 MB/s is itself 11% below the
    // datasheet's 80.9 MB/s) needs the wider band.
    EXPECT_NEAR(idr, drive.paperModelIdrMBps,
                0.20 * drive.paperModelIdrMBps)
        << drive.model;
}

TEST_P(Table1Sweep, IdrWithinPaperBandOfDatasheet)
{
    // The paper claims its model stays within ~15% of the datasheet IDR for
    // "most" disks; its own Atlas 10K prediction is 18.3% off (46.5 vs
    // 39.3 MB/s), so the reproduction uses a 19% envelope.
    const auto& drive = GetParam();
    const double idr = hh::internalDataRateMBps(drive.layout(), drive.rpm);
    EXPECT_NEAR(idr, drive.datasheetIdrMBps, 0.19 * drive.datasheetIdrMBps)
        << drive.model;
}

TEST_P(Table1Sweep, LayoutInvariants)
{
    const auto& drive = GetParam();
    const auto layout = drive.layout();
    EXPECT_GT(layout.cylinders(), 1000) << drive.model;
    EXPECT_EQ(layout.surfaces(), drive.platters * 2) << drive.model;
    EXPECT_GT(layout.zone(0).userSectorsPerTrack, 0) << drive.model;
}

INSTANTIATE_TEST_SUITE_P(
    AllDrives, Table1Sweep, ::testing::ValuesIn(hh::table1Drives()),
    [](const ::testing::TestParamInfo<hh::DriveSpec>& param_info) {
        std::string name = param_info.param.model;
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });
