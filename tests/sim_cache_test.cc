/**
 * @file
 * Unit tests for the segmented disk buffer.
 */
#include <gtest/gtest.h>

#include "sim/cache.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

TEST(DiskCache, MissesWhenEmpty)
{
    hs::DiskCache cache(4u << 20, 16);
    EXPECT_FALSE(cache.read(0, 8));
    EXPECT_EQ(cache.stats().readMisses, 1u);
    EXPECT_EQ(cache.stats().readHits, 0u);
}

TEST(DiskCache, HitsAfterInstall)
{
    hs::DiskCache cache(4u << 20, 16);
    cache.install(100, 64);
    EXPECT_TRUE(cache.read(100, 8));
    EXPECT_TRUE(cache.read(120, 44));
    EXPECT_TRUE(cache.read(163, 1));
    EXPECT_FALSE(cache.read(100, 65));  // extends past extent
    EXPECT_FALSE(cache.read(99, 2));    // starts before extent
    EXPECT_DOUBLE_EQ(cache.stats().hitRatio(), 3.0 / 5.0);
}

TEST(DiskCache, SegmentSizeClipsInstall)
{
    hs::DiskCache cache(1u << 20, 16); // 2048 sectors / 16 = 128 per seg
    EXPECT_EQ(cache.segmentSectors(), 128);
    cache.install(0, 1000);
    EXPECT_TRUE(cache.read(0, 128));
    EXPECT_FALSE(cache.read(0, 129));
}

TEST(DiskCache, LruEvictsOldest)
{
    hs::DiskCache cache(4096 * 512, 2); // 2 segments
    cache.install(0, 64);
    cache.install(10000, 64);
    cache.install(20000, 64); // evicts extent at 0
    EXPECT_FALSE(cache.read(0, 1));
    EXPECT_TRUE(cache.read(10000, 1));
    EXPECT_TRUE(cache.read(20000, 1));
}

TEST(DiskCache, ReadRefreshesLru)
{
    hs::DiskCache cache(4096 * 512, 2);
    cache.install(0, 64);
    cache.install(10000, 64);
    EXPECT_TRUE(cache.read(0, 1));  // refresh extent 0
    cache.install(20000, 64);       // should evict 10000, not 0
    EXPECT_TRUE(cache.read(0, 1));
    EXPECT_FALSE(cache.read(10000, 1));
}

TEST(DiskCache, OverlappingInstallReusesSegment)
{
    hs::DiskCache cache(4096 * 512, 2);
    cache.install(0, 64);
    cache.install(32, 64); // sequential stream advancing
    EXPECT_EQ(cache.activeSegments(), 1);
    EXPECT_TRUE(cache.read(90, 6));
    EXPECT_FALSE(cache.read(0, 8)); // old head of stream replaced
}

TEST(DiskCache, ClearDropsEverything)
{
    hs::DiskCache cache(4u << 20, 4);
    cache.install(0, 64);
    cache.clear();
    EXPECT_FALSE(cache.read(0, 1));
    EXPECT_EQ(cache.activeSegments(), 0);
}

TEST(DiskCache, RejectsBadConfig)
{
    EXPECT_THROW({ hs::DiskCache c(4096, 0); }, hu::ModelError);
    EXPECT_THROW({ hs::DiskCache c(512, 2); }, hu::ModelError);
}

TEST(DiskCache, RejectsEmptyOps)
{
    hs::DiskCache cache(4u << 20, 4);
    EXPECT_THROW(cache.read(0, 0), hu::ModelError);
    EXPECT_THROW(cache.install(0, 0), hu::ModelError);
}
