/**
 * @file
 * Tests of the integrated model facade and the Figure 4 scenarios.
 */
#include <gtest/gtest.h>

#include "core/integrated.h"
#include "core/scenarios.h"
#include "util/error.h"

namespace hc = hddtherm::core;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;
namespace htr = hddtherm::trace;
namespace hu = hddtherm::util;

TEST(Integrated, EvaluatesCheetahClassDesign)
{
    hc::DriveDesign design;
    design.geometry.diameterInches = 2.6;
    design.geometry.platters = 4;
    design.tech = {533e3, 64e3};
    design.rpm = 15000.0;
    design.coolingScale = ht::coolingScaleForPlatters(4);

    const auto eval = hc::evaluateDesign(design);
    EXPECT_NEAR(eval.capacity.userGB, 74.8, 7.5); // paper model: 74.8 GB
    EXPECT_NEAR(eval.idrMBps, 114.4, 4.0);        // paper model: 114.4
    EXPECT_NEAR(eval.avgRotationalLatencyMs, 2.0, 1e-9);
    EXPECT_GT(eval.maxRpmWithinEnvelope, 10000.0);
    EXPECT_DOUBLE_EQ(eval.vcmPowerW, 3.9);
}

TEST(Integrated, EnvelopeVerdictConsistent)
{
    hc::DriveDesign design;
    design.geometry.diameterInches = 2.6;
    design.tech = {533e3, 64e3};
    design.rpm = 15000.0;
    const auto cool = hc::evaluateDesign(design);
    EXPECT_TRUE(cool.withinEnvelope);

    design.rpm = 30000.0;
    const auto hot = hc::evaluateDesign(design);
    EXPECT_FALSE(hot.withinEnvelope);
    EXPECT_GT(hot.steadyAirTempC, cool.steadyAirTempC);
    EXPECT_GT(hot.viscousPowerW, cool.viscousPowerW);
}

TEST(Integrated, GeometryForCapacityLandsClose)
{
    const hddtherm::hdd::RecordingTech tech{500e3, 40e3};
    for (const double target : {5.0, 20.0, 75.0, 200.0}) {
        const auto g = hc::geometryForCapacity(tech, target);
        const hddtherm::hdd::ZoneModel zm(g, tech);
        const double got = hddtherm::hdd::computeCapacity(zm).userGB;
        EXPECT_GT(got, target * 0.5) << target;
        EXPECT_LT(got, target * 2.0) << target;
    }
}

TEST(Integrated, GeometryForCapacityRejectsBadTarget)
{
    EXPECT_THROW(hc::geometryForCapacity({500e3, 40e3}, -1.0),
                 hu::ModelError);
}

TEST(Scenarios, AllFivePresent)
{
    const auto scenarios = hc::figure4Scenarios(2000);
    ASSERT_EQ(scenarios.size(), 5u);
    EXPECT_EQ(scenarios[0].name, "Openmail");
    EXPECT_EQ(scenarios[1].name, "OLTP");
    EXPECT_EQ(scenarios[2].name, "Search-Engine");
    EXPECT_EQ(scenarios[3].name, "TPC-C");
    EXPECT_EQ(scenarios[4].name, "TPC-H");
}

TEST(Scenarios, MatchPaperFigure4aTable)
{
    const auto scenarios = hc::figure4Scenarios(2000);
    // Disk counts, RAID organization and base RPM straight from the
    // paper's Figure 4(a).
    EXPECT_EQ(scenarios[0].system.disks, 8);
    EXPECT_EQ(scenarios[0].system.raid, hs::RaidLevel::Raid5);
    EXPECT_EQ(scenarios[1].system.disks, 24);
    EXPECT_EQ(scenarios[1].system.raid, hs::RaidLevel::None);
    EXPECT_EQ(scenarios[2].system.disks, 6);
    EXPECT_EQ(scenarios[3].system.disks, 4);
    EXPECT_EQ(scenarios[4].system.disks, 15);
    EXPECT_DOUBLE_EQ(scenarios[4].baseRpm, 7200.0);
    for (const auto& s : scenarios) {
        ASSERT_EQ(s.paperAvgResponseMs.size(), 4u) << s.name;
        EXPECT_EQ(s.system.stripeSectors, 16) << s.name;
        EXPECT_EQ(s.system.disk.cacheBytes, 4u << 20) << s.name;
        EXPECT_EQ(s.system.disk.zones, 30) << s.name;
    }
}

TEST(Scenarios, DiskCapacityNearPublished)
{
    for (const auto& s : hc::figure4Scenarios(2000)) {
        const auto layout = hs::makeLayout(s.system.disk);
        const double gb =
            hddtherm::hdd::computeCapacity(layout).userGB;
        EXPECT_GT(gb, 0.5 * s.paperDiskCapacityGB) << s.name;
        EXPECT_LT(gb, 2.0 * s.paperDiskCapacityGB) << s.name;
    }
}

TEST(Scenarios, RpmStepsAreFivekApart)
{
    const auto s = hc::figure4Scenario("OLTP", 2000);
    const auto steps = s.rpmSteps();
    ASSERT_EQ(steps.size(), 4u);
    EXPECT_DOUBLE_EQ(steps[0], 10000.0);
    EXPECT_DOUBLE_EQ(steps[3], 25000.0);
}

TEST(Scenarios, TraceIsDeterministic)
{
    const auto s = hc::figure4Scenario("TPC-C", 3000);
    const auto a = s.makeTrace();
    const auto b = s.makeTrace();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.records()[100].lba, b.records()[100].lba);
}

TEST(Scenarios, HigherRpmImprovesEveryWorkload)
{
    // The headline of Figure 4, at reduced scale for test runtime.
    for (const auto& s : hc::figure4Scenarios(4000)) {
        const double base = s.run(s.baseRpm).meanMs();
        const double fast = s.run(s.baseRpm + 5000.0).meanMs();
        EXPECT_LT(fast, base) << s.name;
        // Paper range: 20.8% (OLTP) to 52.5% (Openmail) improvement.
        const double improvement = 1.0 - fast / base;
        EXPECT_GT(improvement, 0.08) << s.name;
        EXPECT_LT(improvement, 0.75) << s.name;
    }
}

TEST(Scenarios, UnknownNameThrows)
{
    EXPECT_THROW(hc::figure4Scenario("NoSuchTrace", 2000), hu::ModelError);
}

TEST(Scenarios, RunHonorsRequestOverride)
{
    const auto s = hc::figure4Scenario("OLTP", 5000);
    const auto metrics = s.run(s.baseRpm, 2000);
    EXPECT_EQ(metrics.count(), 2000u);
}
