/**
 * @file
 * Validation of the calibrated drive thermal model against the paper's
 * anchors (Figure 1, Table 3, §5.2/5.3) plus property tests.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "thermal/calibration.h"
#include "thermal/correlations.h"
#include "thermal/drive_thermal.h"
#include "thermal/envelope.h"
#include "util/error.h"

namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

namespace {

ht::DriveThermalConfig
config(double diameter, int platters, double rpm)
{
    ht::DriveThermalConfig c;
    c.geometry.diameterInches = diameter;
    c.geometry.platters = platters;
    c.rpm = rpm;
    return c;
}

} // namespace

TEST(ViscousDissipation, MatchesPaperSeries)
{
    // Paper §4.1 quotes the 2.6" 1-platter windage along the roadmap.
    EXPECT_NEAR(ht::viscousDissipationW(15098, 2.6, 1), 0.91, 0.005);
    EXPECT_NEAR(ht::viscousDissipationW(16263, 2.6, 1), 1.13, 0.02);
    EXPECT_NEAR(ht::viscousDissipationW(19972, 2.6, 1), 2.00, 0.02);
    EXPECT_NEAR(ht::viscousDissipationW(55819, 2.6, 1), 35.55, 0.7);
    EXPECT_NEAR(ht::viscousDissipationW(143470, 2.6, 1), 499.73, 5.0);
}

TEST(ViscousDissipation, ScalesWithPlattersAndDiameter)
{
    const double one = ht::viscousDissipationW(15000, 2.6, 1);
    EXPECT_NEAR(ht::viscousDissipationW(15000, 2.6, 4), 4.0 * one, 1e-9);
    // d^4.8: halving the diameter cuts windage by 2^4.8 ~ 27.9x.
    EXPECT_NEAR(ht::viscousDissipationW(15000, 1.3, 1),
                one / std::pow(2.0, 4.8), 1e-9);
}

TEST(VcmPower, MatchesPaperAnchors)
{
    EXPECT_NEAR(ht::vcmPowerW(2.6), 3.9, 1e-9);
    EXPECT_NEAR(ht::vcmPowerW(2.1), 2.28, 1e-9);
    EXPECT_NEAR(ht::vcmPowerW(1.6), 0.618, 1e-9);
    // Monotone in diameter.
    EXPECT_GT(ht::vcmPowerW(3.3), ht::vcmPowerW(2.6));
    EXPECT_GT(ht::vcmPowerW(2.0), ht::vcmPowerW(1.7));
}

TEST(Correlations, ReynoldsAndFilmAreMonotoneInRpm)
{
    double prev_h = 0.0;
    for (double rpm = 5000; rpm <= 250000; rpm += 5000) {
        const double h = ht::rotatingDiskFilmCoefficient(rpm, 0.033);
        EXPECT_GT(h, prev_h);
        prev_h = h;
    }
}

TEST(Correlations, TransitionIsContinuous)
{
    // Find the RPM where Re crosses the transition for r = 33 mm and check
    // the film coefficient is continuous there.
    const double r = 0.033;
    const double nu = ht::kDriveAir.kinematicViscosity;
    const double omega_c = ht::kDiskTransitionRe * nu / (r * r);
    const double rpm_c = omega_c * 60.0 / (2.0 * 3.14159265358979);
    const double below = ht::rotatingDiskFilmCoefficient(rpm_c * 0.999, r);
    const double above = ht::rotatingDiskFilmCoefficient(rpm_c * 1.001, r);
    EXPECT_NEAR(below, above, below * 0.01);
}

TEST(DriveThermal, CheetahSteadyStateHitsEnvelope)
{
    // Calibration anchor: 2.6" 1-platter at 15020 RPM = 45.22 C.
    ht::DriveThermalModel m(config(2.6, 1, ht::kEnvelopeRpm26));
    EXPECT_NEAR(m.steadyAirTempC(), ht::kThermalEnvelopeC, 0.01);
}

TEST(DriveThermal, Table3SmallPlatterAnchors)
{
    // Calibration anchors for the 2.1" and 1.6" sizes (Table 3, 2002).
    EXPECT_NEAR(ht::steadyAirTempC(config(2.1, 1, 18692)), 43.56, 0.01);
    EXPECT_NEAR(ht::steadyAirTempC(config(1.6, 1, 24533)), 41.64, 0.01);
}

TEST(DriveThermal, Table3PredictionsTrackPaper)
{
    // Post-calibration *predictions* vs paper Table 3 (2.6", 1 platter).
    // These were not fitted; allow a modest tolerance on the temperature
    // rise above ambient.
    const struct
    {
        double rpm;
        double paper_temp;
    } rows[] = {
        {16263, 45.47}, {19972, 46.46}, {24534, 48.26},
        {30130, 51.48}, {37001, 57.18}, {45452, 67.27},
        {55819, 85.04},
    };
    for (const auto& row : rows) {
        const double t = ht::steadyAirTempC(config(2.6, 1, row.rpm));
        const double rise = t - 28.0;
        const double paper_rise = row.paper_temp - 28.0;
        EXPECT_NEAR(rise, paper_rise, 0.20 * paper_rise + 0.5)
            << "rpm " << row.rpm;
    }
}

TEST(DriveThermal, VcmOffDropMatchesPaper)
{
    // Paper §5.3: at 24,534 RPM the 2.6" drive runs at 48.26 C with the
    // VCM on and 44.07 C with it off (a 4.19 C drop).
    auto cfg = config(2.6, 1, 24534);
    const double on = ht::steadyAirTempC(cfg);
    cfg.vcmDuty = 0.0;
    const double off = ht::steadyAirTempC(cfg);
    EXPECT_NEAR(on - off, 4.19, 1.0);
    EXPECT_LT(off, ht::kThermalEnvelopeC);
}

TEST(DriveThermal, SteadyTempMonotoneInRpm)
{
    double prev = 0.0;
    for (double rpm = 5000; rpm <= 150000; rpm += 2500) {
        const double t = ht::steadyAirTempC(config(2.6, 1, rpm));
        EXPECT_GT(t, prev) << "rpm " << rpm;
        prev = t;
    }
}

TEST(DriveThermal, SteadyTempMonotoneInPlatters)
{
    const double t1 = ht::steadyAirTempC(config(2.6, 1, 15000));
    const double t2 = ht::steadyAirTempC(config(2.6, 2, 15000));
    const double t4 = ht::steadyAirTempC(config(2.6, 4, 15000));
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t4);
}

TEST(DriveThermal, SmallerPlattersRunCoolerAtSameRpm)
{
    const double t26 = ht::steadyAirTempC(config(2.6, 1, 20000));
    const double t21 = ht::steadyAirTempC(config(2.1, 1, 20000));
    const double t16 = ht::steadyAirTempC(config(1.6, 1, 20000));
    EXPECT_GT(t26, t21);
    EXPECT_GT(t21, t16);
}

TEST(DriveThermal, AmbientShiftsSteadyStateNearlyLinearly)
{
    auto cfg = config(2.6, 1, 15020);
    const double base = ht::steadyAirTempC(cfg);
    cfg.ambientC = 23.0;
    const double cooler = ht::steadyAirTempC(cfg);
    EXPECT_NEAR(base - cooler, 5.0, 1e-6);
}

TEST(DriveThermal, TransientShapeMatchesFigure1)
{
    // Figure 1: from a 28 C cold start the Cheetah air temperature passes
    // ~33 C within the first minute and reaches steady state (45.22 C)
    // within the hour.
    ht::DriveThermalModel m(config(2.6, 1, ht::kEnvelopeRpm26));
    m.reset(28.0);
    m.advance(60.0);
    const double after_1min = m.airTempC();
    EXPECT_GT(after_1min, 29.5);
    EXPECT_LT(after_1min, 37.0);

    m.advance(47.0 * 60.0);
    const double after_48min = m.airTempC();
    const double steady = m.steadyAirTempC();
    EXPECT_NEAR(after_48min, steady, 0.60);
    EXPECT_GT(after_48min, steady - 1.5);
}

TEST(DriveThermal, TransientNeverOvershootsSteady)
{
    ht::DriveThermalModel m(config(2.6, 1, 20000));
    m.reset(28.0);
    const double steady = m.steadyAirTempC();
    m.advance(3600.0, 0.1, [&](double, double temp) {
        EXPECT_LE(temp, steady + 1e-6);
    });
}

TEST(DriveThermal, SettleJumpsToSteady)
{
    ht::DriveThermalModel m(config(2.6, 1, 18000));
    m.reset(28.0);
    m.settle();
    EXPECT_NEAR(m.airTempC(), m.steadyAirTempC(), 1e-9);
}

TEST(DriveThermal, SetRpmTakesEffect)
{
    ht::DriveThermalModel m(config(2.6, 1, 15000));
    const double cool = m.steadyAirTempC();
    m.setRpm(25000);
    EXPECT_GT(m.steadyAirTempC(), cool);
    EXPECT_DOUBLE_EQ(m.config().rpm, 25000);
}

TEST(DriveThermal, CoolingScaleLowersTemperature)
{
    auto cfg = config(2.6, 1, 20000);
    const double base = ht::steadyAirTempC(cfg);
    cfg.coolingScale = 2.0;
    EXPECT_LT(ht::steadyAirTempC(cfg), base);
}

TEST(DriveThermal, SmallEnclosureRunsHotter)
{
    auto cfg = config(2.6, 1, 15020);
    const double ff35 = ht::steadyAirTempC(cfg);
    cfg.enclosure = hddtherm::hdd::FormFactor::ff25();
    const double ff25 = ht::steadyAirTempC(cfg);
    // Paper §4.2.2: the 2.5" enclosure falls off the roadmap immediately
    // and needs roughly 15 C more cooling.
    EXPECT_GT(ff25, ff35 + 5.0);
}

TEST(DriveThermal, RejectsInvalidConfig)
{
    EXPECT_THROW({ ht::DriveThermalModel m(config(2.6, 1, 0.0)); },
                 hu::ModelError);
    auto cfg = config(2.6, 1, 15000);
    cfg.vcmDuty = 1.5;
    EXPECT_THROW({ ht::DriveThermalModel m(cfg); }, hu::ModelError);
    cfg.vcmDuty = 1.0;
    cfg.coolingScale = 0.0;
    EXPECT_THROW({ ht::DriveThermalModel m(cfg); }, hu::ModelError);
}

TEST(Envelope, MaxRpmMatchesCalibrationAnchor)
{
    const double rpm = ht::maxRpmWithinEnvelope(config(2.6, 1, 15000));
    EXPECT_NEAR(rpm, ht::kEnvelopeRpm26, 30.0);
}

TEST(Envelope, SmallerPlattersAllowHigherRpm)
{
    const double rpm26 = ht::maxRpmWithinEnvelope(config(2.6, 1, 15000));
    const double rpm21 = ht::maxRpmWithinEnvelope(config(2.1, 1, 15000));
    const double rpm16 = ht::maxRpmWithinEnvelope(config(1.6, 1, 15000));
    EXPECT_GT(rpm21, rpm26);
    EXPECT_GT(rpm16, rpm21);
}

TEST(Envelope, VcmOffRaisesLimit)
{
    auto cfg = config(2.6, 1, 15000);
    const double on = ht::maxRpmWithinEnvelope(cfg);
    cfg.vcmDuty = 0.0;
    const double off = ht::maxRpmWithinEnvelope(cfg);
    // Paper §5.2: 15,020 -> 26,750 RPM for the 2.6" size.
    EXPECT_GT(off, on + 5000.0);
}

TEST(Envelope, CoolingScaleForPlattersNormalizes)
{
    EXPECT_DOUBLE_EQ(ht::coolingScaleForPlatters(1), 1.0);
    const double s2 = ht::coolingScaleForPlatters(2);
    const double s4 = ht::coolingScaleForPlatters(4);
    EXPECT_GT(s2, 1.0);
    EXPECT_GT(s4, s2);

    // With the granted budget, the n-platter stack meets the envelope at
    // the reference point.
    auto cfg = config(2.6, 4, ht::kEnvelopeRpm26);
    cfg.coolingScale = s4;
    EXPECT_NEAR(ht::steadyAirTempC(cfg), ht::kThermalEnvelopeC, 0.01);
}

TEST(Envelope, ImpossibleEnvelopeReturnsZero)
{
    const double rpm =
        ht::maxRpmWithinEnvelope(config(2.6, 1, 15000), 20.0);
    EXPECT_DOUBLE_EQ(rpm, 0.0);
}

TEST(SpmLoss, CalibratedValuesAreReasonable)
{
    // Solved from the Table 3 anchors; the paper's data implies roughly
    // 10-12 W of non-windage spindle loss across sizes.
    for (double d : {1.6, 2.1, 2.6}) {
        const double s = ht::spmMotorLossW(d);
        EXPECT_GT(s, 5.0) << d;
        EXPECT_LT(s, 20.0) << d;
    }
}
