/**
 * @file
 * Tests of the cache-disk hierarchy (paper §5.4).
 */
#include <gtest/gtest.h>

#include "engine/trace.h"
#include "sim/hybrid.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::HybridConfig
smallHybrid()
{
    hs::HybridConfig cfg;
    // Large slow primary: 3.7" at a conservative spindle speed.
    cfg.primary.geometry.diameterInches = 3.7;
    cfg.primary.tech = {400e3, 30e3};
    cfg.primary.rpm = 7200.0;
    // Small fast cache member: 1.6" spinning much faster.
    cfg.cacheDisk.geometry.diameterInches = 1.6;
    cfg.cacheDisk.tech = {400e3, 30e3};
    cfg.cacheDisk.rpm = 20000.0;
    cfg.extentSectors = 256;
    return cfg;
}

hs::IoRequest
make(std::uint64_t id, double arrival, std::int64_t lba, int sectors,
     hs::IoType type = hs::IoType::Read)
{
    hs::IoRequest r;
    r.id = id;
    r.arrival = arrival;
    r.lba = lba;
    r.sectors = sectors;
    r.type = type;
    return r;
}

} // namespace

TEST(Hybrid, CapacityComesFromPrimary)
{
    hs::HybridSystem sys(smallHybrid());
    EXPECT_EQ(sys.logicalSectors(), sys.primary().totalSectors());
    EXPECT_GT(sys.cacheExtents(), 0);
    EXPECT_LT(sys.cacheDisk().totalSectors(),
              sys.primary().totalSectors());
}

TEST(Hybrid, FirstReadMissesSecondHits)
{
    hs::HybridSystem sys(smallHybrid());
    sys.run({make(1, 0.0, 1000, 8)});
    EXPECT_EQ(sys.stats().readMisses, 1u);
    EXPECT_EQ(sys.stats().readHits, 0u);
    EXPECT_GT(sys.stats().promotions, 0u);

    sys.run({make(2, 0.0, 1000, 8)});
    EXPECT_EQ(sys.stats().readHits, 1u);
    EXPECT_EQ(sys.stats().readMisses, 1u);
}

TEST(Hybrid, HitServedByCacheDisk)
{
    hs::HybridSystem sys(smallHybrid());
    sys.run({make(1, 0.0, 1000, 8)});
    const auto cache_before = sys.cacheDisk().activity().completions;
    sys.run({make(2, 0.0, 1000, 8)});
    EXPECT_GT(sys.cacheDisk().activity().completions, cache_before);
}

TEST(Hybrid, RepeatedHotSetFasterThanPrimaryAlone)
{
    // A hot set much larger than the drives' 4 MB track buffers but
    // smaller than the cache member, re-read several times: the hybrid
    // should beat the primary alone.
    auto workload = [] {
        std::vector<hs::IoRequest> load;
        std::uint64_t id = 1;
        double t = 0.0;
        for (int round = 0; round < 5; ++round) {
            for (int i = 0; i < 300; ++i) {
                t += 0.02;
                load.push_back(
                    make(id++, t, std::int64_t(i) * 40000, 8));
            }
        }
        return load;
    }();

    hs::HybridSystem hybrid(smallHybrid());
    const auto hybrid_metrics = hybrid.run(workload);
    EXPECT_GT(hybrid.stats().hitRatio(), 0.7);

    hs::HybridConfig no_promote = smallHybrid();
    no_promote.promoteOnMiss = false;
    hs::HybridSystem baseline(no_promote);
    const auto baseline_metrics = baseline.run(workload);
    EXPECT_DOUBLE_EQ(baseline.stats().hitRatio(), 0.0);

    EXPECT_LT(hybrid_metrics.meanMs(), baseline_metrics.meanMs());
}

TEST(Hybrid, WritesGoToPrimary)
{
    hs::HybridSystem sys(smallHybrid());
    sys.run({make(1, 0.0, 5000, 8, hs::IoType::Write)});
    EXPECT_EQ(sys.primary().activity().completions, 1u);
    EXPECT_EQ(sys.stats().readHits + sys.stats().readMisses, 0u);
}

TEST(Hybrid, WriteUpdatesResidentExtent)
{
    hs::HybridSystem sys(smallHybrid());
    sys.run({make(1, 0.0, 1000, 8)}); // promote the extent
    const auto cache_ops = sys.cacheDisk().activity().completions;
    sys.run({make(2, 0.0, 1000, 8, hs::IoType::Write)});
    // The cached copy is refreshed: one extra cache-disk op.
    EXPECT_GT(sys.cacheDisk().activity().completions, cache_ops);
    // And a subsequent read still hits with fresh data.
    sys.run({make(3, 0.0, 1000, 8)});
    EXPECT_EQ(sys.stats().readHits, 1u);
}

TEST(Hybrid, LruEvictsWhenCacheFull)
{
    auto cfg = smallHybrid();
    cfg.extentSectors = 1 << 16; // few large extents -> small residency
    hs::HybridSystem sys(cfg);
    const auto extents = sys.cacheExtents();
    ASSERT_GT(extents, 0);
    ASSERT_LT(extents, 100);

    std::vector<hs::IoRequest> load;
    std::uint64_t id = 1;
    double t = 0.0;
    for (std::int64_t e = 0; e <= extents; ++e) {
        t += 0.05;
        load.push_back(make(id++, t, e * cfg.extentSectors, 8));
    }
    sys.run(load);
    EXPECT_GT(sys.stats().evictions, 0u);
    // The first extent was evicted: reading it again misses.
    const auto misses = sys.stats().readMisses;
    sys.run({make(id, 0.0, 0, 8)});
    EXPECT_EQ(sys.stats().readMisses, misses + 1);
}

TEST(Hybrid, CrossExtentReadJoinsCorrectly)
{
    auto cfg = smallHybrid();
    hs::HybridSystem sys(cfg);
    const std::int64_t boundary = cfg.extentSectors;
    // Warm both extents, then read across the boundary.
    sys.run({make(1, 0.0, boundary - 64, 8),
             make(2, 0.1, boundary + 8, 8)});
    const auto metrics = sys.run({make(3, 0.0, boundary - 8, 16)});
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_EQ(sys.stats().readHits, 1u);
}

TEST(Hybrid, RejectsBadRequestsAndConfigs)
{
    hs::HybridSystem sys(smallHybrid());
    EXPECT_THROW(sys.submit(make(1, 0.0, -1, 8)), hu::ModelError);
    EXPECT_THROW(sys.submit(make(2, 0.0, sys.logicalSectors(), 8)),
                 hu::ModelError);

    auto cfg = smallHybrid();
    cfg.extentSectors = 4;
    EXPECT_THROW({ hs::HybridSystem bad(cfg); }, hu::ModelError);
}

TEST(Hybrid, SteppedRunMatchesRunToCompletion)
{
    // Driving the hierarchy's kernel with runUntil() on an arbitrary
    // grid is pure observation: metrics and hit/miss accounting match a
    // one-shot run bit for bit.
    auto workload = [] {
        std::vector<hs::IoRequest> load;
        double t = 0.0;
        for (std::uint64_t i = 0; i < 200; ++i) {
            t += 0.004;
            // Half the accesses revisit a small hot set, half stream.
            const std::int64_t lba =
                i % 2 ? std::int64_t(i % 16) * 96
                      : std::int64_t(i) * 7919 % 100000;
            load.push_back(make(i + 1, t, lba, 8, i % 5 == 0
                                                     ? hs::IoType::Write
                                                     : hs::IoType::Read));
        }
        return load;
    }();

    hs::HybridSystem oneshot(smallHybrid());
    const auto a = oneshot.run(workload);

    hs::HybridSystem stepped(smallHybrid());
    for (const auto& req : workload)
        stepped.submit(req);
    double t = 0.0;
    while (!stepped.events().empty()) {
        t += 0.0137;
        stepped.events().runUntil(t);
    }
    const auto& b = stepped.metrics();

    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.meanMs(), b.meanMs());
    EXPECT_EQ(a.stats().variance(), b.stats().variance());
    EXPECT_EQ(a.histogram().bins(), b.histogram().bins());
    EXPECT_EQ(oneshot.stats().readHits, stepped.stats().readHits);
    EXPECT_EQ(oneshot.stats().readMisses, stepped.stats().readMisses);
    EXPECT_EQ(oneshot.stats().promotions, stepped.stats().promotions);
    EXPECT_EQ(oneshot.stats().evictions, stepped.stats().evictions);
}

TEST(Hybrid, SubRequestsFireInTheStorageDomain)
{
    hs::HybridSystem sys(smallHybrid());
    hddtherm::engine::RingBufferTraceSink sink(1 << 12);
    sys.events().setTraceSink(&sink);
    sys.run({make(1, 0.0, 1000, 8), make(2, 0.01, 1000, 8)});
    sys.events().setTraceSink(nullptr);

    ASSERT_GT(sink.events().size(), 0u);
    for (const auto& e : sink.events())
        EXPECT_EQ(e.domainName, "storage");
    EXPECT_EQ(sink.dropped(), 0u);
}
