/**
 * @file
 * Tests of the LZ-class checkpoint payload codec: exact round-trips
 * across degenerate and multi-megabyte inputs, deterministic encoding,
 * dictionary (delta) mode, strict rejection of truncated or trailing
 * bytes, and a seeded randomized torture loop whose seed is echoed (and
 * overridable via HDDTHERM_CODEC_FUZZ_SEED) so any failure replays.
 */
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/codec.h"
#include "util/error.h"

namespace hc = hddtherm::util::codec;
namespace hu = hddtherm::util;

namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes
fromString(const std::string& s)
{
    return Bytes(s.begin(), s.end());
}

/// Round-trip through compress()/decompress() and require exactness.
void
expectRoundTrip(const Bytes& data)
{
    const Bytes packed = hc::compress(data);
    ASSERT_GE(packed.size(), 8u); // Always at least the size header.
    EXPECT_EQ(hc::decodedSize(packed.data(), packed.size(), "test"),
              data.size());
    EXPECT_EQ(hc::decompress(packed, "test"), data);
}

Bytes
randomBytes(std::mt19937_64& rng, std::size_t n)
{
    Bytes data(n);
    for (auto& b : data)
        b = std::uint8_t(rng());
    return data;
}

/// Checkpoint-payload-shaped data: runs, repeated name-like tokens, and
/// random value bytes — compressible but not trivially so.
Bytes
structuredBytes(std::mt19937_64& rng, std::size_t target)
{
    Bytes data;
    data.reserve(target + 64);
    while (data.size() < target) {
        switch (rng() % 4) {
        case 0: { // A byte run.
            const auto b = std::uint8_t(rng());
            data.insert(data.end(), 4 + rng() % 200, b);
            break;
        }
        case 1: { // A repeated token, as section field names repeat.
            const std::string name =
                "field" + std::to_string(rng() % 8) + ".value";
            data.insert(data.end(), name.begin(), name.end());
            break;
        }
        case 2: { // Copy an earlier window (long-range similarity).
            if (data.size() > 32) {
                const std::size_t off = rng() % (data.size() - 16);
                const std::size_t len = 8 + rng() % 64;
                for (std::size_t i = 0; i < len; ++i)
                    data.push_back(data[off + i]);
                break;
            }
            [[fallthrough]];
        }
        default: { // Random (incompressible) values.
            const std::size_t len = 1 + rng() % 32;
            for (std::size_t i = 0; i < len; ++i)
                data.push_back(std::uint8_t(rng()));
        }
        }
    }
    return data;
}

} // namespace

TEST(Codec, RoundTripsDegenerateInputs)
{
    expectRoundTrip({});
    expectRoundTrip({0x42});
    expectRoundTrip({0x00, 0x00});
    expectRoundTrip(fromString("abc"));
    expectRoundTrip(fromString("abcabcabcabcabcabcabcabc"));
}

TEST(Codec, EmptyInputIsJustTheSizeHeader)
{
    const Bytes packed = hc::compress(Bytes{});
    EXPECT_EQ(packed.size(), 8u);
    EXPECT_EQ(hc::decompress(packed, "empty"), Bytes{});
}

TEST(Codec, RoundTripsIncompressibleRandomData)
{
    std::mt19937_64 rng(0x0ddball);
    for (const std::size_t n : {16u, 255u, 256u, 4096u, 65537u}) {
        const Bytes data = randomBytes(rng, n);
        const Bytes packed = hc::compress(data);
        // Random bytes cannot shrink; the format's overhead must stay
        // small (header + occasional literal-run extensions).
        EXPECT_LE(packed.size(), 8 + n + n / 128 + 16);
        EXPECT_EQ(hc::decompress(packed, "rand"), data);
    }
}

TEST(Codec, CompressesRepetitiveDataWell)
{
    Bytes data;
    for (int i = 0; i < 4000; ++i) {
        const std::string rec = "record" + std::to_string(i % 7) +
                                ":value=0.125|";
        data.insert(data.end(), rec.begin(), rec.end());
    }
    const Bytes packed = hc::compress(data);
    EXPECT_LT(packed.size(), data.size() / 10);
    EXPECT_EQ(hc::decompress(packed, "rep"), data);
}

TEST(Codec, RoundTripsMultiMegabyteInput)
{
    std::mt19937_64 rng(0xb16b00b5ull);
    const Bytes data = structuredBytes(rng, 3 << 20);
    const Bytes packed = hc::compress(data);
    EXPECT_LT(packed.size(), data.size());
    EXPECT_EQ(hc::decompress(packed, "big"), data);
}

TEST(Codec, MatchesReachBeyondSixtyFourKiB)
{
    // A 200 KiB block repeated: the second copy must collapse into
    // long-range matches, which needs offsets wider than 16 bits.
    std::mt19937_64 rng(0xfeedull);
    const Bytes block = randomBytes(rng, 200 * 1024);
    Bytes data = block;
    data.insert(data.end(), block.begin(), block.end());
    const Bytes packed = hc::compress(data);
    EXPECT_LT(packed.size(), block.size() + block.size() / 4);
    EXPECT_EQ(hc::decompress(packed, "far"), data);
}

TEST(Codec, EncodingIsDeterministic)
{
    std::mt19937_64 rng(7);
    const Bytes data = structuredBytes(rng, 100000);
    EXPECT_EQ(hc::compress(data), hc::compress(data));
    const Bytes dict = structuredBytes(rng, 50000);
    EXPECT_EQ(hc::compressWithDict(dict, data.data(), data.size()),
              hc::compressWithDict(dict, data.data(), data.size()));
}

TEST(Codec, DictModeRoundTripsAndBeatsPlainOnSimilarData)
{
    std::mt19937_64 rng(21);
    const Bytes base = structuredBytes(rng, 300000);
    // An edited copy: same content with a small insertion and a few
    // scattered byte edits — the delta-checkpoint shape.
    Bytes edited = base;
    const std::string patch = "inserted-patch-bytes";
    edited.insert(edited.begin() + 1234, patch.begin(), patch.end());
    for (std::size_t i = 5000; i < edited.size(); i += 50000)
        edited[i] ^= 0x5a;

    const Bytes plain = hc::compress(edited);
    const Bytes delta =
        hc::compressWithDict(base, edited.data(), edited.size());
    EXPECT_LT(delta.size(), plain.size() / 4);
    EXPECT_EQ(hc::decompressWithDict(base, delta.data(), delta.size(),
                                     "dict"),
              edited);
}

TEST(Codec, DictModeHandlesDegenerateDictionaries)
{
    const Bytes data = fromString("some payload bytes to encode");
    for (const auto& dict :
         {Bytes{}, Bytes{0x11}, fromString("some payload")}) {
        const Bytes packed =
            hc::compressWithDict(dict, data.data(), data.size());
        EXPECT_EQ(hc::decompressWithDict(dict, packed.data(),
                                         packed.size(), "dict"),
                  data);
    }
}

TEST(Codec, RejectsStreamsShorterThanTheHeader)
{
    for (std::size_t n = 0; n < 8; ++n) {
        const Bytes stub(n, 0);
        EXPECT_THROW(hc::decompress(stub, "short"), hu::ModelError);
        EXPECT_THROW(hc::decodedSize(stub.data(), stub.size(), "short"),
                     hu::ModelError);
    }
}

TEST(Codec, EveryTruncationIsRejected)
{
    std::mt19937_64 rng(3);
    const Bytes data = structuredBytes(rng, 3000);
    const Bytes packed = hc::compress(data);
    for (std::size_t n = 0; n < packed.size(); ++n) {
        const Bytes cut(packed.begin(),
                        packed.begin() + std::ptrdiff_t(n));
        EXPECT_THROW(hc::decompress(cut, "cut"), hu::ModelError)
            << "prefix of " << n << " bytes decoded";
    }
}

TEST(Codec, TrailingGarbageIsRejected)
{
    Bytes packed = hc::compress(fromString("payload payload payload"));
    packed.push_back(0x00);
    EXPECT_THROW(hc::decompress(packed, "extra"), hu::ModelError);
}

TEST(Codec, ErrorsNameTheCallerContext)
{
    try {
        hc::decompress(Bytes{1, 2, 3}, "checkpoint 'x' section 'y'");
        FAIL() << "truncated stream decoded";
    } catch (const hu::ModelError& e) {
        EXPECT_NE(std::strstr(e.what(), "checkpoint 'x' section 'y'"),
                  nullptr)
            << e.what();
    }
}

TEST(Codec, CorruptionNeverReproducesTheOriginal)
{
    // The codec carries no checksum (the container layer does); a
    // flipped byte must therefore either fail decode or produce
    // different bytes — silently returning the original is the only
    // unacceptable outcome.  Random block + exact copy: matches exist
    // (the copy) but every window is distinct, so a perturbed offset or
    // length cannot happen to reproduce the same bytes the way it could
    // inside a byte run.
    std::mt19937_64 rng(11);
    const Bytes block = randomBytes(rng, 1000);
    Bytes data = block;
    data.insert(data.end(), block.begin(), block.end());
    const Bytes packed = hc::compress(data);
    for (std::size_t i = 0; i < packed.size(); ++i) {
        Bytes bent = packed;
        bent[i] ^= 0x01;
        try {
            EXPECT_NE(hc::decompress(bent, "bent"), data)
                << "flip at byte " << i << " went unnoticed";
        } catch (const hu::ModelError&) {
            // Loud rejection is the preferred outcome.
        }
    }
}

TEST(Codec, FuzzRoundTripsAndTruncationsReplayably)
{
    // Seed is date-stable by default, overridable to replay a failure:
    //   HDDTHERM_CODEC_FUZZ_SEED=<seed> ./util_codec_test
    std::uint64_t seed = 0x5eed;
    if (const char* env = std::getenv("HDDTHERM_CODEC_FUZZ_SEED"))
        seed = std::strtoull(env, nullptr, 0);
    RecordProperty("codec_fuzz_seed", std::to_string(seed));
    std::printf("codec fuzz seed: %llu\n",
                static_cast<unsigned long long>(seed));
    std::mt19937_64 rng(seed);

    for (int round = 0; round < 40; ++round) {
        const std::size_t n = rng() % 20000;
        const Bytes data = round % 2 ? structuredBytes(rng, n)
                                     : randomBytes(rng, n);
        const Bytes dict = structuredBytes(rng, rng() % 4000);

        const Bytes plain = hc::compress(data);
        ASSERT_EQ(hc::decompress(plain, "fuzz"), data)
            << "seed " << seed << " round " << round;
        const Bytes delta =
            hc::compressWithDict(dict, data.data(), data.size());
        ASSERT_EQ(hc::decompressWithDict(dict, delta.data(), delta.size(),
                                         "fuzz"),
                  data)
            << "seed " << seed << " round " << round;

        // A random truncation of either stream must be rejected.
        if (!plain.empty()) {
            const std::size_t cut = rng() % plain.size();
            const Bytes stub(plain.begin(),
                             plain.begin() + std::ptrdiff_t(cut));
            EXPECT_THROW(hc::decompress(stub, "fuzz"), hu::ModelError)
                << "seed " << seed << " round " << round << " cut "
                << cut;
        }
    }
}
