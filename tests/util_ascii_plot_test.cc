/**
 * @file
 * Tests of the console line-chart renderer.
 */
#include <gtest/gtest.h>

#include "util/ascii_plot.h"
#include "util/error.h"

namespace hu = hddtherm::util;

TEST(AsciiPlot, RendersSeriesAndLegend)
{
    hu::AsciiPlot plot;
    plot.addSeries("up", {{0.0, 0.0}, {1.0, 1.0}});
    const auto out = plot.str();
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("* = up"), std::string::npos);
    EXPECT_NE(out.find('|'), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, DistinctGlyphsPerSeries)
{
    hu::AsciiPlot plot;
    plot.addSeries("a", {{0.0, 0.0}, {1.0, 1.0}});
    plot.addSeries("b", {{0.0, 1.0}, {1.0, 0.0}});
    const auto out = plot.str();
    EXPECT_NE(out.find("* = a"), std::string::npos);
    EXPECT_NE(out.find("o = b"), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiPlot, MonotoneSeriesPutsEndpointsInCorners)
{
    hu::AsciiPlot::Options opts;
    opts.width = 20;
    opts.height = 8;
    hu::AsciiPlot plot(opts);
    plot.addSeries("line", {{0.0, 0.0}, {1.0, 1.0}});
    const auto out = plot.str();
    // Split into lines; the first canvas row should contain the glyph at
    // the right edge, the last canvas row at the left edge.
    std::vector<std::string> lines;
    std::string line;
    std::istringstream is(out);
    while (std::getline(is, line))
        lines.push_back(line);
    const auto bar0 = lines[0].find('|');
    ASSERT_NE(bar0, std::string::npos);
    const auto top_pos = lines[0].find('*');
    const auto bottom_pos = lines[7].find('*');
    ASSERT_NE(top_pos, std::string::npos);
    ASSERT_NE(bottom_pos, std::string::npos);
    EXPECT_GT(top_pos, bottom_pos); // rising curve: left-bottom to right-top
}

TEST(AsciiPlot, AxisTicksShowRange)
{
    hu::AsciiPlot plot;
    plot.addSeries("s", {{2002.0, 100.0}, {2012.0, 4000.0}});
    const auto out = plot.str();
    EXPECT_NE(out.find("2002"), std::string::npos);
    EXPECT_NE(out.find("2012"), std::string::npos);
    EXPECT_NE(out.find("4000"), std::string::npos);
}

TEST(AsciiPlot, LogScaleAcceptsOnlyPositive)
{
    hu::AsciiPlot::Options opts;
    opts.logY = true;
    hu::AsciiPlot plot(opts);
    EXPECT_THROW(plot.addSeries("bad", {{0.0, 0.0}}), hu::ModelError);
    EXPECT_NO_THROW(plot.addSeries("good", {{0.0, 1.0}, {1.0, 1000.0}}));
    EXPECT_NE(plot.str().find("log scale"), std::string::npos);
}

TEST(AsciiPlot, FlatAndSinglePointSeriesAreSafe)
{
    hu::AsciiPlot plot;
    plot.addSeries("flat", {{0.0, 5.0}, {1.0, 5.0}});
    plot.addSeries("dot", {{0.5, 5.0}});
    EXPECT_NO_THROW(plot.str());
}

TEST(AsciiPlot, RejectsBadInput)
{
    hu::AsciiPlot plot;
    EXPECT_THROW(plot.addSeries("empty", {}), hu::ModelError);
    EXPECT_THROW(plot.print(std::cout), hu::ModelError); // no series
    hu::AsciiPlot::Options tiny;
    tiny.width = 2;
    EXPECT_THROW({ hu::AsciiPlot p(tiny); }, hu::ModelError);
}

TEST(AsciiPlot, LabelsAppear)
{
    hu::AsciiPlot::Options opts;
    opts.xLabel = "year";
    opts.yLabel = "IDR MB/s";
    hu::AsciiPlot plot(opts);
    plot.addSeries("s", {{0.0, 1.0}, {1.0, 2.0}});
    const auto out = plot.str();
    EXPECT_NE(out.find("year"), std::string::npos);
    EXPECT_NE(out.find("IDR MB/s"), std::string::npos);
}
