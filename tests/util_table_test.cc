/**
 * @file
 * Unit tests for table/CSV emission and logging plumbing.
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/log.h"
#include "util/table.h"

namespace hu = hddtherm::util;

TEST(TableWriter, AlignsColumns)
{
    hu::TableWriter t({"a", "long-header", "c"});
    t.addRow({"x", "1", "yyyy"});
    t.addRow({"wider", "2", "z"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Column alignment: 'long-header' padded region exists in each line.
    std::istringstream lines(out);
    std::string header, sep, r1, r2;
    std::getline(lines, header);
    std::getline(lines, sep);
    std::getline(lines, r1);
    std::getline(lines, r2);
    EXPECT_EQ(header.find("long-header"), r1.find("1"));
    EXPECT_EQ(header.find("c"), r1.find("yyyy"));
    EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
}

TEST(TableWriter, RejectsMismatchedRow)
{
    hu::TableWriter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), hu::ModelError);
    EXPECT_THROW(t.addRow({"1", "2", "3"}), hu::ModelError);
    EXPECT_THROW({ hu::TableWriter empty({}); }, hu::ModelError);
}

TEST(TableWriter, NumFormatting)
{
    EXPECT_EQ(hu::TableWriter::num(3.14159, 2), "3.14");
    EXPECT_EQ(hu::TableWriter::num(3.14159, 0), "3");
    EXPECT_EQ(hu::TableWriter::num(-1.5, 1), "-1.5");
    EXPECT_EQ(hu::TableWriter::num(42ll), "42");
}

TEST(TableWriter, CsvRoundTripWithQuoting)
{
    hu::TableWriter t({"name", "value"});
    t.addRow({"plain", "1"});
    t.addRow({"with,comma", "2"});
    t.addRow({"with\"quote", "3"});
    const std::string path = "/tmp/hddtherm_table_test.csv";
    ASSERT_TRUE(t.writeCsv(path));

    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "name,value");
    std::getline(in, line);
    EXPECT_EQ(line, "plain,1");
    std::getline(in, line);
    EXPECT_EQ(line, "\"with,comma\",2");
    std::getline(in, line);
    EXPECT_EQ(line, "\"with\"\"quote\",3");
    std::remove(path.c_str());
}

TEST(TableWriter, CsvFailsOnBadPath)
{
    hu::TableWriter t({"a"});
    t.addRow({"1"});
    EXPECT_FALSE(t.writeCsv("/nonexistent-dir/impossible.csv"));
}

TEST(TableWriter, RowCount)
{
    hu::TableWriter t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Log, LevelGateIsMonotone)
{
    const auto prior = hu::logLevel();
    hu::setLogLevel(hu::LogLevel::Warn);
    EXPECT_EQ(hu::logLevel(), hu::LogLevel::Warn);
    // Emitting below the gate must be a no-op (nothing to assert beyond
    // not crashing; output goes to stderr).
    hu::logDebug("suppressed %d", 1);
    hu::logInfo("suppressed %s", "too");
    hu::logWarn("visible at warn level");
    hu::setLogLevel(hu::LogLevel::Quiet);
    hu::logWarn("suppressed at quiet");
    hu::setLogLevel(prior);
}
