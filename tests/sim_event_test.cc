/**
 * @file
 * Unit tests for the discrete-event kernel.
 */
#include <vector>

#include <gtest/gtest.h>

#include "sim/event.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

TEST(EventQueue, RunsInTimeOrder)
{
    hs::EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsKeepInsertionOrder)
{
    hs::EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    hs::EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] {
        ++fired;
        q.schedule(2.0, [&] { ++fired; });
    });
    q.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    hs::EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] { ++fired; });
    q.schedule(5.0, [&] { ++fired; });
    q.runUntil(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    EXPECT_EQ(q.pending(), 1u);
    q.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    hs::EventQueue q;
    double fired_at = -1.0;
    q.schedule(2.0, [&] {
        q.scheduleAfter(3.0, [&] { fired_at = q.now(); });
    });
    q.runAll();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, RejectsPastScheduling)
{
    hs::EventQueue q;
    q.schedule(5.0, [] {});
    q.runAll();
    EXPECT_THROW(q.schedule(1.0, [] {}), hu::ModelError);
    EXPECT_THROW(q.scheduleAfter(-1.0, [] {}), hu::ModelError);
}

TEST(EventQueue, RunNextOnEmptyReturnsFalse)
{
    hs::EventQueue q;
    EXPECT_FALSE(q.runNext());
    EXPECT_TRUE(q.empty());
}
