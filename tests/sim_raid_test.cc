/**
 * @file
 * Property tests of the RAID striping arithmetic.
 */
#include <numeric>

#include <gtest/gtest.h>

#include "sim/raid.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

TEST(Raid0, SingleUnitStaysOnOneDisk)
{
    const auto t = hs::stripeRaid0(0, 16, 4, 16);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].disk, 0);
    EXPECT_EQ(t[0].lba, 0);
    EXPECT_EQ(t[0].sectors, 16);
}

TEST(Raid0, CrossingUnitsRotateDisks)
{
    const auto t = hs::stripeRaid0(8, 32, 4, 16);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].disk, 0);
    EXPECT_EQ(t[0].lba, 8);
    EXPECT_EQ(t[0].sectors, 8);
    EXPECT_EQ(t[1].disk, 1);
    EXPECT_EQ(t[1].lba, 0);
    EXPECT_EQ(t[1].sectors, 16);
    EXPECT_EQ(t[2].disk, 2);
    EXPECT_EQ(t[2].lba, 0);
    EXPECT_EQ(t[2].sectors, 8);
}

TEST(Raid0, WrapsToNextRow)
{
    // Unit index 4 on a 4-disk array is disk 0, second row.
    const auto t = hs::stripeRaid0(64, 16, 4, 16);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].disk, 0);
    EXPECT_EQ(t[0].lba, 16);
}

TEST(Raid0, SectorsConserved)
{
    for (std::int64_t lba : {0, 5, 123, 1000, 8191}) {
        for (int sectors : {1, 7, 16, 33, 100}) {
            const auto ts = hs::stripeRaid0(lba, sectors, 5, 16);
            int total = 0;
            for (const auto& t : ts)
                total += t.sectors;
            EXPECT_EQ(total, sectors);
        }
    }
}

TEST(Raid5, ParityRotatesLeftSymmetric)
{
    EXPECT_EQ(hs::raid5ParityDisk(0, 4), 3);
    EXPECT_EQ(hs::raid5ParityDisk(1, 4), 2);
    EXPECT_EQ(hs::raid5ParityDisk(2, 4), 1);
    EXPECT_EQ(hs::raid5ParityDisk(3, 4), 0);
    EXPECT_EQ(hs::raid5ParityDisk(4, 4), 3);
}

TEST(Raid5, DataNeverLandsOnParityDisk)
{
    const int disks = 5, stripe = 16;
    for (std::int64_t lba = 0; lba < 5000; lba += 13) {
        const auto ts = hs::stripeRaid5Data(lba, 40, disks, stripe);
        for (const auto& t : ts) {
            const auto row = hs::raid5RowOfTarget(t, stripe);
            EXPECT_NE(t.disk, hs::raid5ParityDisk(row, disks))
                << "lba " << lba;
        }
    }
}

TEST(Raid5, SectorsConserved)
{
    for (std::int64_t lba : {0, 3, 47, 999}) {
        for (int sectors : {1, 15, 16, 17, 64, 200}) {
            const auto ts = hs::stripeRaid5Data(lba, sectors, 4, 16);
            int total = 0;
            for (const auto& t : ts)
                total += t.sectors;
            EXPECT_EQ(total, sectors);
        }
    }
}

TEST(Raid5, ConsecutiveUnitsFillRowBeforeAdvancing)
{
    // 4 disks => 3 data units per row.  Units 0,1,2 share row 0; unit 3
    // starts row 1.
    const int stripe = 16;
    const auto u0 = hs::stripeRaid5Data(0, 16, 4, stripe).front();
    const auto u2 = hs::stripeRaid5Data(32, 16, 4, stripe).front();
    const auto u3 = hs::stripeRaid5Data(48, 16, 4, stripe).front();
    EXPECT_EQ(hs::raid5RowOfTarget(u0, stripe), 0);
    EXPECT_EQ(hs::raid5RowOfTarget(u2, stripe), 0);
    EXPECT_EQ(hs::raid5RowOfTarget(u3, stripe), 1);
    // Distinct disks within a row.
    EXPECT_NE(u0.disk, u2.disk);
}

TEST(Raid5, ParityTargetShape)
{
    const auto p = hs::raid5ParityTarget(7, 4, 16);
    EXPECT_EQ(p.disk, hs::raid5ParityDisk(7, 4));
    EXPECT_EQ(p.lba, 7 * 16);
    EXPECT_EQ(p.sectors, 16);
}

TEST(ArrayCapacity, PerLevel)
{
    EXPECT_EQ(hs::arrayLogicalSectors(hs::RaidLevel::None, 8, 1000), 1000);
    EXPECT_EQ(hs::arrayLogicalSectors(hs::RaidLevel::Raid0, 8, 1000), 8000);
    EXPECT_EQ(hs::arrayLogicalSectors(hs::RaidLevel::Raid5, 8, 1000), 7000);
}

TEST(ArrayCapacity, Raid5NeedsThreeDisks)
{
    EXPECT_THROW(hs::arrayLogicalSectors(hs::RaidLevel::Raid5, 2, 1000),
                 hu::ModelError);
}

TEST(RaidNames, AreStable)
{
    EXPECT_STREQ(hs::raidLevelName(hs::RaidLevel::None), "JBOD");
    EXPECT_STREQ(hs::raidLevelName(hs::RaidLevel::Raid0), "RAID-0");
    EXPECT_STREQ(hs::raidLevelName(hs::RaidLevel::Raid5), "RAID-5");
}

TEST(RaidValidation, RejectsBadArguments)
{
    EXPECT_THROW(hs::stripeRaid0(-1, 16, 4, 16), hu::ModelError);
    EXPECT_THROW(hs::stripeRaid0(0, 0, 4, 16), hu::ModelError);
    EXPECT_THROW(hs::stripeRaid0(0, 16, 0, 16), hu::ModelError);
    EXPECT_THROW(hs::stripeRaid0(0, 16, 4, 0), hu::ModelError);
    EXPECT_THROW(hs::raid5ParityDisk(-1, 4), hu::ModelError);
}

/// Property: across widths, every logical sector maps to exactly one
/// (disk, lba) and distinct logical units never collide.
class RaidWidthSweep : public ::testing::TestWithParam<int>
{};

TEST_P(RaidWidthSweep, Raid5MappingIsInjective)
{
    const int disks = GetParam();
    const int stripe = 16;
    std::set<std::pair<int, std::int64_t>> seen;
    for (std::int64_t unit = 0; unit < 200; ++unit) {
        const auto ts =
            hs::stripeRaid5Data(unit * stripe, stripe, disks, stripe);
        ASSERT_EQ(ts.size(), 1u);
        const auto key = std::make_pair(ts[0].disk, ts[0].lba);
        EXPECT_TRUE(seen.insert(key).second)
            << "collision at unit " << unit;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RaidWidthSweep,
                         ::testing::Values(3, 4, 5, 8, 15));
