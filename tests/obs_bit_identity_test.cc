/**
 * @file
 * The obs layer's core property: metric collection is pure observation.
 * Enabling metrics (and attaching the kernel metrics sink) must leave
 * every simulation result bit-identical — fault-free and faulted, for a
 * single co-simulation and for a multi-threaded fleet run.
 */
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "engine/metrics_sink.h"
#include "fault/fault_schedule.h"
#include "fleet/fleet_sim.h"
#include "obs/metrics.h"

namespace hd = hddtherm::dtm;
namespace he = hddtherm::engine;
namespace hfa = hddtherm::fault;
namespace hf = hddtherm::fleet;
namespace ho = hddtherm::obs;
namespace hs = hddtherm::sim;

namespace {

class ObsBitIdentityTest : public ::testing::Test
{
  protected:
    void SetUp() override { ho::setEnabled(false); }
    void TearDown() override { ho::setEnabled(false); }
};

hs::SystemConfig
smallSystem(double rpm)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = rpm;
    cfg.disk.rpmChangeSecPerKrpm = 0.02;
    cfg.disks = 1;
    return cfg;
}

std::vector<hs::IoRequest>
randomWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        out.push_back(r);
    }
    return out;
}

hfa::FaultEvent
event(double at, hfa::FaultKind kind, double value, double duration = 0.0,
      int target = -1)
{
    hfa::FaultEvent e;
    e.timeSec = at;
    e.kind = kind;
    e.value = value;
    e.durationSec = duration;
    e.target = target;
    return e;
}

/// A hot drive under GateRequests so the DTM loop actually acts (and
/// the dtm.* instrumentation sites fire).
hd::CoSimConfig
hotConfig()
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(24534.0);
    cfg.policy = hd::DtmPolicy::GateRequests;
    return cfg;
}

hfa::FaultSchedule
stressFaults()
{
    return hfa::FaultSchedule(
        {event(0.5, hfa::FaultKind::AmbientStep, 4.0),
         event(1.0, hfa::FaultKind::AmbientSpike, 8.0, 2.0),
         event(1.5, hfa::FaultKind::SensorNoise, 0.4, 3.0),
         event(2.0, hfa::FaultKind::SensorDropout, 0.0, 2.5)},
        4242);
}

/// Every CoSimResult field, bit-for-bit.
void
expectIdentical(const hd::CoSimResult& a, const hd::CoSimResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.metrics.stats().variance(), b.metrics.stats().variance());
    EXPECT_EQ(a.metrics.histogram().bins(), b.metrics.histogram().bins());
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.meanTempC, b.meanTempC);
    EXPECT_EQ(a.envelopeExceededSec, b.envelopeExceededSec);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.meanVcmDuty, b.meanVcmDuty);
    EXPECT_EQ(a.invalidReadings, b.invalidReadings);
    EXPECT_EQ(a.failSafeActivations, b.failSafeActivations);
    EXPECT_EQ(a.failSafeSec, b.failSafeSec);
}

/// Every FleetResult aggregate, bit-for-bit.
void
expectIdentical(const hf::FleetResult& a, const hf::FleetResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.metrics.stats().variance(), b.metrics.stats().variance());
    EXPECT_EQ(a.meanLatencyMs, b.meanLatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.maxDriveTempC, b.maxDriveTempC);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.invalidReadings, b.invalidReadings);
    EXPECT_EQ(a.failSafeActivations, b.failSafeActivations);
    EXPECT_EQ(a.failSafeSec, b.failSafeSec);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.epochs, b.epochs);
    ASSERT_EQ(a.chassis.size(), b.chassis.size());
    for (std::size_t i = 0; i < a.chassis.size(); ++i) {
        EXPECT_EQ(a.chassis[i].peakDriveAmbientC,
                  b.chassis[i].peakDriveAmbientC);
        EXPECT_EQ(a.chassis[i].peakDriveTempC, b.chassis[i].peakDriveTempC);
        EXPECT_EQ(a.chassis[i].gateEvents, b.chassis[i].gateEvents);
        EXPECT_EQ(a.chassis[i].gatedSec, b.chassis[i].gatedSec);
    }
}

/// Run with metrics enabled and the kernel metrics sink attached.
hd::CoSimResult
observedRun(const hd::CoSimConfig& cfg,
            const std::vector<hs::IoRequest>& workload)
{
    ho::setEnabled(true);
    hd::CoSimEngine engine(cfg);
    he::KernelMetricsSink sink;
    engine.system().events().setTraceSink(&sink);
    engine.start(workload);
    engine.advanceToCompletion();
    engine.system().events().setTraceSink(nullptr);
    ho::setEnabled(false);
    return engine.result();
}

hf::FleetConfig
smallFleet()
{
    hf::FleetConfig cfg;
    cfg.racks = 1;
    cfg.rack.chassisCount = 2;
    cfg.chassis.bays = 2;
    cfg.bay.system = smallSystem(24534.0);
    cfg.bay.policy = hd::DtmPolicy::GateRequests;
    cfg.workload.requests = 120;
    cfg.workload.arrivalRatePerSec = 100.0;
    cfg.epochSec = 0.25;
    cfg.maxSimulatedSec = 600.0;
    cfg.seed = 7;
    return cfg;
}

} // namespace

TEST_F(ObsBitIdentityTest, MetricsNeverPerturbFaultFreeCoSim)
{
    const auto cfg = hotConfig();
    const auto workload = randomWorkload(
        800, hs::StorageSystem(cfg.system).logicalSectors(), 120.0);

    const std::size_t registered_before =
        ho::MetricsRegistry::global().size();
    const auto plain = hd::CoSimulation(cfg).run(workload);
    const auto observed = observedRun(cfg, workload);

    expectIdentical(plain, observed);
    EXPECT_GT(plain.metrics.count(), 0u);
    // The observed run must actually have recorded something, or the
    // property is vacuous.
    EXPECT_GT(ho::MetricsRegistry::global().size(), registered_before);
    const auto snap = ho::MetricsRegistry::global().snapshot();
    std::uint64_t total = 0;
    std::uint64_t kernel_fired = 0;
    for (const auto& c : snap.counters) {
        total += c.value;
        if (c.name.rfind("engine.kernel.", 0) == 0 &&
            c.name.size() > 6 &&
            c.name.compare(c.name.size() - 6, 6, ".fired") == 0)
            kernel_fired += c.value;
    }
    EXPECT_GT(total, 0u);
    // The kernel metrics sink saw the run's dispatches.
    EXPECT_GT(kernel_fired, 0u);
}

TEST_F(ObsBitIdentityTest, MetricsNeverPerturbFaultedCoSim)
{
    auto cfg = hotConfig();
    cfg.faults = stressFaults();
    cfg.maxSimulatedSec = 60.0;
    const auto workload = randomWorkload(
        800, hs::StorageSystem(cfg.system).logicalSectors(), 120.0);

    const auto plain = hd::CoSimulation(cfg).run(workload);
    const auto observed = observedRun(cfg, workload);

    expectIdentical(plain, observed);
    // The fault mix must actually have bitten, so the fault.* counters
    // had work to do while staying invisible.
    EXPECT_GT(plain.invalidReadings, 0u);
    EXPECT_GT(plain.failSafeActivations, 0u);
}

TEST_F(ObsBitIdentityTest, ReversedEnablementOrderAgreesToo)
{
    // Order-independence: enabled-then-disabled and disabled-then-enabled
    // pairs bracket any cross-test registry state.
    const auto cfg = hotConfig();
    const auto workload = randomWorkload(
        400, hs::StorageSystem(cfg.system).logicalSectors(), 120.0);

    const auto observed_first = observedRun(cfg, workload);
    const auto plain = hd::CoSimulation(cfg).run(workload);
    expectIdentical(observed_first, plain);
}

TEST_F(ObsBitIdentityTest, MetricsNeverPerturbFleetRuns)
{
    const auto cfg = smallFleet();

    auto plain = hf::FleetSimulation(cfg).run(2, nullptr);

    ho::setEnabled(true);
    auto observed = hf::FleetSimulation(cfg).run(2, nullptr);
    ho::setEnabled(false);

    expectIdentical(plain, observed);
}

TEST_F(ObsBitIdentityTest, MetricsNeverPerturbFaultedFleetRuns)
{
    auto cfg = smallFleet();
    cfg.faults = hfa::FaultSchedule(
        {event(1.0, hfa::FaultKind::AirflowDegrade, 0.6, 4.0, 0),
         event(1.0, hfa::FaultKind::SensorNoise, 0.3, 6.0),
         event(1.5, hfa::FaultKind::BayKill, 0.0, 0.0, 1),
         event(3.0, hfa::FaultKind::BayRestore, 0.0, 0.0, 1),
         event(1.0, hfa::FaultKind::SensorDropout, 0.0, 2.0, 2)},
        99);

    auto plain = hf::FleetSimulation(cfg).run(1, nullptr);

    ho::setEnabled(true);
    auto observed = hf::FleetSimulation(cfg).run(2, nullptr);
    ho::setEnabled(false);

    expectIdentical(plain, observed);
    EXPECT_GT(plain.invalidReadings, 0u);
}
