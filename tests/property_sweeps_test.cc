/**
 * @file
 * Broad parameterized property sweeps across the model stack: the
 * physical monotonicities and conservation laws that every experiment
 * depends on, checked over grids of configurations.
 */
#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "hdd/capacity.h"
#include "roadmap/roadmap.h"
#include "sim/raid.h"
#include "thermal/drive_thermal.h"
#include "thermal/envelope.h"

namespace hh = hddtherm::hdd;
namespace hr = hddtherm::roadmap;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;

// ---------------------------------------------------------------------
// Thermal grid: for every (diameter, platters) configuration, steady
// temperature must rise with RPM, with duty, and with ambient, and the
// heat flows must conserve energy.
// ---------------------------------------------------------------------

using ThermalConfigParam = std::tuple<double, int>;

class ThermalGrid : public ::testing::TestWithParam<ThermalConfigParam>
{
  protected:
    ht::DriveThermalConfig
    config(double rpm) const
    {
        ht::DriveThermalConfig cfg;
        cfg.geometry.diameterInches = std::get<0>(GetParam());
        cfg.geometry.platters = std::get<1>(GetParam());
        cfg.coolingScale =
            ht::coolingScaleForPlatters(cfg.geometry.platters);
        cfg.rpm = rpm;
        return cfg;
    }
};

TEST_P(ThermalGrid, SteadyTempMonotoneInRpm)
{
    // At small platters and low speed the windage gained by spinning
    // faster is outweighed by the improved film coefficients (the stack
    // stirs its own cooling), producing a genuine sub-degree dip —
    // largest for tall 1.6" stacks (~0.25 C).  The operative properties:
    // the curve never dips materially below its running maximum, and is
    // strictly increasing once windage dominates (>= 18K RPM).
    double prev = -1e9;
    double running_max = -1e9;
    for (double rpm = 6000.0; rpm <= 40000.0; rpm += 4000.0) {
        const double t = ht::steadyAirTempC(config(rpm));
        EXPECT_GT(t, running_max - 0.30) << "rpm " << rpm;
        if (rpm >= 18000.0) {
            EXPECT_GT(t, prev) << "rpm " << rpm;
        }
        prev = t;
        running_max = std::max(running_max, t);
    }
}

TEST_P(ThermalGrid, SteadyTempMonotoneInDuty)
{
    auto cfg = config(15000.0);
    double prev = -1e9;
    for (double duty = 0.0; duty <= 1.0; duty += 0.25) {
        cfg.vcmDuty = duty;
        const double t = ht::steadyAirTempC(cfg);
        EXPECT_GT(t, prev) << "duty " << duty;
        prev = t;
    }
}

TEST_P(ThermalGrid, AmbientShiftIsExactlyAdditive)
{
    // The network is linear: an ambient change translates the solution.
    auto cfg = config(18000.0);
    const double base = ht::steadyAirTempC(cfg);
    cfg.ambientC += 7.0;
    EXPECT_NEAR(ht::steadyAirTempC(cfg), base + 7.0, 1e-9);
}

TEST_P(ThermalGrid, HeatFlowsConserveEnergy)
{
    ht::DriveThermalModel model(config(20000.0));
    double to_ambient = 0.0;
    for (const auto& f : model.steadyHeatFlows()) {
        if (f.path == "base->ambient")
            to_ambient = f.watts;
    }
    EXPECT_NEAR(to_ambient, model.totalPowerW(),
                1e-6 * model.totalPowerW());
}

TEST_P(ThermalGrid, EnvelopeCeilingConsistentWithSteadyTemp)
{
    auto cfg = config(15000.0);
    const double ceiling = ht::maxRpmWithinEnvelope(cfg);
    if (ceiling <= 0.0)
        return; // always above the envelope for this configuration
    cfg.rpm = ceiling;
    EXPECT_NEAR(ht::steadyAirTempC(cfg), ht::kThermalEnvelopeC, 0.05);
    cfg.rpm = ceiling * 1.05;
    EXPECT_GT(ht::steadyAirTempC(cfg), ht::kThermalEnvelopeC);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThermalGrid,
    ::testing::Combine(::testing::Values(1.6, 2.1, 2.6, 3.0),
                       ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<ThermalConfigParam>& param_info) {
        return "d" + std::to_string(int(std::get<0>(param_info.param) * 10)) +
               "_p" + std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------
// Capacity grid: user capacity scales exactly with platter count and
// monotonically with density and diameter.
// ---------------------------------------------------------------------

class CapacityGrid : public ::testing::TestWithParam<double>
{};

TEST_P(CapacityGrid, CapacityLinearInPlatters)
{
    const double diameter = GetParam();
    hh::PlatterGeometry g;
    g.diameterInches = diameter;
    const hh::RecordingTech tech{500e3, 50e3};
    g.platters = 1;
    const auto one = hh::computeCapacity(hh::ZoneModel(g, tech));
    for (int n : {2, 3, 4, 8}) {
        g.platters = n;
        const auto many = hh::computeCapacity(hh::ZoneModel(g, tech));
        EXPECT_NEAR(many.userGB, n * one.userGB, 1e-9) << n;
    }
}

TEST_P(CapacityGrid, IdrIndependentOfPlatters)
{
    const double diameter = GetParam();
    hh::PlatterGeometry g;
    g.diameterInches = diameter;
    const hh::RecordingTech tech{500e3, 50e3};
    g.platters = 1;
    const double idr1 =
        hh::internalDataRateMBps(hh::ZoneModel(g, tech), 10000.0);
    g.platters = 6;
    const double idr6 =
        hh::internalDataRateMBps(hh::ZoneModel(g, tech), 10000.0);
    EXPECT_DOUBLE_EQ(idr1, idr6);
}

TEST_P(CapacityGrid, LargerPlatterHoldsMoreAndStreamsFaster)
{
    const double diameter = GetParam();
    if (diameter >= 3.0)
        return; // compare each size against one step up
    hh::PlatterGeometry small, big;
    small.diameterInches = diameter;
    big.diameterInches = diameter + 0.5;
    const hh::RecordingTech tech{500e3, 50e3};
    const auto cap_small = hh::computeCapacity(hh::ZoneModel(small, tech));
    const auto cap_big = hh::computeCapacity(hh::ZoneModel(big, tech));
    EXPECT_GT(cap_big.userGB, cap_small.userGB);
    EXPECT_GT(
        hh::internalDataRateMBps(hh::ZoneModel(big, tech), 10000.0),
        hh::internalDataRateMBps(hh::ZoneModel(small, tech), 10000.0));
}

INSTANTIATE_TEST_SUITE_P(Diameters, CapacityGrid,
                         ::testing::Values(1.6, 2.1, 2.6, 3.0, 3.3));

// ---------------------------------------------------------------------
// RAID-0 width sweep: striping covers each logical sector exactly once
// for any width and request shape.
// ---------------------------------------------------------------------

class RaidWidths : public ::testing::TestWithParam<int>
{};

TEST_P(RaidWidths, Raid0PartitionIsExact)
{
    const int disks = GetParam();
    const int stripe = 16;
    for (int sectors : {1, 15, 16, 17, 160, 333}) {
        for (std::int64_t lba : {0ll, 7ll, 1000ll, 99999ll}) {
            const auto ts =
                hs::stripeRaid0(lba, sectors, disks, stripe);
            int total = 0;
            for (const auto& t : ts) {
                EXPECT_GE(t.disk, 0);
                EXPECT_LT(t.disk, disks);
                EXPECT_GT(t.sectors, 0);
                EXPECT_LE(t.sectors, stripe);
                total += t.sectors;
            }
            EXPECT_EQ(total, sectors);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RaidWidths,
                         ::testing::Values(1, 2, 3, 5, 8, 24));

// ---------------------------------------------------------------------
// Roadmap ambient sweep: cooler ambients never shorten the on-target
// horizon and never lower the achievable IDR.
// ---------------------------------------------------------------------

class AmbientSweep : public ::testing::TestWithParam<double>
{};

TEST_P(AmbientSweep, CoolerNeverWorse)
{
    const double ambient = GetParam();
    hr::RoadmapOptions base;
    hr::RoadmapOptions cooler = base;
    cooler.ambientC = ambient;
    const hr::RoadmapEngine warm_engine(base);
    const hr::RoadmapEngine cool_engine(cooler);
    for (int year : {2003, 2007, 2011}) {
        const auto warm = warm_engine.evaluate(year, 2.1, 1);
        const auto cool = cool_engine.evaluate(year, 2.1, 1);
        EXPECT_GE(cool.maxRpm, warm.maxRpm - 1.0) << year;
        EXPECT_GE(cool.achievableIdr, warm.achievableIdr - 0.01) << year;
    }
}

INSTANTIATE_TEST_SUITE_P(Ambients, AmbientSweep,
                         ::testing::Values(18.0, 23.0, 26.0, 28.0));
