/**
 * @file
 * Tests of the trace container, file round-trip and synthetic generators.
 */
#include <cstdio>

#include <gtest/gtest.h>

#include "trace/synth.h"
#include "trace/trace.h"
#include "util/error.h"

namespace htr = hddtherm::trace;
namespace hu = hddtherm::util;

namespace {

htr::WorkloadSpec
baseSpec()
{
    htr::WorkloadSpec spec;
    spec.name = "test";
    spec.devices = 4;
    spec.requests = 20000;
    spec.arrivalRatePerSec = 1000.0;
    spec.readFraction = 0.7;
    spec.sequentialFraction = 0.3;
    spec.seed = 99;
    return spec;
}

constexpr std::int64_t kSpace = 10'000'000;

} // namespace

TEST(Trace, AppendValidatesOrderingAndFields)
{
    htr::Trace t("x");
    t.append({0.0, 0, 0, 8, false});
    t.append({1.0, 1, 100, 8, true});
    EXPECT_EQ(t.size(), 2u);
    EXPECT_THROW(t.append({0.5, 0, 0, 8, false}), hu::ModelError);
    EXPECT_THROW(t.append({2.0, 0, -1, 8, false}), hu::ModelError);
    EXPECT_THROW(t.append({2.0, 0, 0, 0, false}), hu::ModelError);
}

TEST(Trace, ToRequestsPreservesFields)
{
    htr::Trace t("x");
    t.append({0.5, 2, 4096, 16, true});
    const auto reqs = t.toRequests();
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].id, 1u);
    EXPECT_DOUBLE_EQ(reqs[0].arrival, 0.5);
    EXPECT_EQ(reqs[0].device, 2);
    EXPECT_EQ(reqs[0].lba, 4096);
    EXPECT_EQ(reqs[0].sectors, 16);
    EXPECT_TRUE(reqs[0].isWrite());
}

TEST(Trace, SaveLoadRoundTrip)
{
    htr::Trace t("roundtrip");
    t.append({0.001, 0, 128, 8, false});
    t.append({0.503, 3, 999, 32, true});
    const std::string path = "/tmp/hddtherm_trace_test.csv";
    ASSERT_TRUE(t.save(path));
    const auto loaded = htr::Trace::load(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_NEAR(loaded.records()[0].time, 0.001, 1e-9);
    EXPECT_EQ(loaded.records()[1].device, 3);
    EXPECT_EQ(loaded.records()[1].lba, 999);
    EXPECT_EQ(loaded.records()[1].sectors, 32);
    EXPECT_TRUE(loaded.records()[1].write);
    EXPECT_FALSE(loaded.records()[0].write);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage)
{
    const std::string path = "/tmp/hddtherm_trace_bad.csv";
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        std::fputs("time,device,lba,sectors,op\nnot,a,valid,line\n", f);
        std::fclose(f);
    }
    EXPECT_THROW(htr::Trace::load(path), hu::ModelError);
    std::remove(path.c_str());
    EXPECT_THROW(htr::Trace::load("/nonexistent/trace.csv"),
                 hu::ModelError);
}

TEST(Synth, DeterministicForSameSeed)
{
    const htr::SyntheticWorkload gen(baseSpec());
    const auto a = gen.generate(kSpace);
    const auto b = gen.generate(kSpace);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 977) {
        EXPECT_DOUBLE_EQ(a.records()[i].time, b.records()[i].time);
        EXPECT_EQ(a.records()[i].lba, b.records()[i].lba);
    }
}

TEST(Synth, DifferentSeedsDiffer)
{
    auto spec = baseSpec();
    const auto a = htr::SyntheticWorkload(spec).generate(kSpace);
    spec.seed = 100;
    const auto b = htr::SyntheticWorkload(spec).generate(kSpace);
    int same = 0;
    for (std::size_t i = 0; i < 100; ++i)
        same += (a.records()[i].lba == b.records()[i].lba);
    EXPECT_LT(same, 10);
}

TEST(Synth, HonorsArrivalRate)
{
    const auto t = htr::SyntheticWorkload(baseSpec()).generate(kSpace);
    const auto stats = htr::analyze(t);
    EXPECT_NEAR(stats.arrivalRatePerSec, 1000.0, 50.0);
}

TEST(Synth, HonorsReadFraction)
{
    const auto t = htr::SyntheticWorkload(baseSpec()).generate(kSpace);
    const auto stats = htr::analyze(t);
    EXPECT_NEAR(stats.readFraction, 0.7, 0.02);
}

TEST(Synth, SequentialFractionMaterializes)
{
    auto spec = baseSpec();
    spec.sequentialFraction = 0.5;
    const auto t = htr::SyntheticWorkload(spec).generate(kSpace);
    const auto stats = htr::analyze(t);
    // Streams restart on region jumps, so the observed fraction tracks
    // the parameter closely but not exactly.
    EXPECT_NEAR(stats.sequentialFraction, 0.5, 0.05);

    spec.sequentialFraction = 0.0;
    const auto t0 = htr::SyntheticWorkload(spec).generate(kSpace);
    EXPECT_LT(htr::analyze(t0).sequentialFraction, 0.02);
}

TEST(Synth, StaysWithinLogicalSpace)
{
    auto spec = baseSpec();
    spec.maxSectors = 512;
    const auto t = htr::SyntheticWorkload(spec).generate(kSpace);
    for (const auto& r : t.records()) {
        EXPECT_GE(r.lba, 0);
        EXPECT_LE(r.lba + r.sectors, kSpace);
    }
}

TEST(Synth, SizesWithinBounds)
{
    auto spec = baseSpec();
    spec.minSectors = 4;
    spec.maxSectors = 64;
    const auto t = htr::SyntheticWorkload(spec).generate(kSpace);
    for (const auto& r : t.records()) {
        EXPECT_GE(r.sectors, 4);
        EXPECT_LE(r.sectors, 64);
    }
}

TEST(Synth, DevicesAllUsed)
{
    const auto t = htr::SyntheticWorkload(baseSpec()).generate(kSpace);
    const auto stats = htr::analyze(t);
    EXPECT_EQ(stats.devices, 4);
}

TEST(Synth, BurstinessIncreasesVarianceNotMean)
{
    auto spec = baseSpec();
    spec.requests = 50000;
    const auto smooth = htr::SyntheticWorkload(spec).generate(kSpace);
    spec.burstiness = 0.7;
    const auto bursty = htr::SyntheticWorkload(spec).generate(kSpace);
    const auto s1 = htr::analyze(smooth);
    const auto s2 = htr::analyze(bursty);
    // Same long-run rate...
    EXPECT_NEAR(s2.arrivalRatePerSec, s1.arrivalRatePerSec,
                0.1 * s1.arrivalRatePerSec);
    // ...but burstier gaps: compare squared coefficient of variation.
    auto scv = [](const htr::Trace& t) {
        double sum = 0.0, sumsq = 0.0;
        const auto& r = t.records();
        for (std::size_t i = 1; i < r.size(); ++i) {
            const double gap = r[i].time - r[i - 1].time;
            sum += gap;
            sumsq += gap * gap;
        }
        const double n = double(r.size() - 1);
        const double mean = sum / n;
        return (sumsq / n - mean * mean) / (mean * mean);
    };
    EXPECT_GT(scv(bursty), 1.5 * scv(smooth));
}

TEST(Synth, RejectsInvalidSpecs)
{
    auto spec = baseSpec();
    spec.devices = 0;
    EXPECT_THROW({ htr::SyntheticWorkload g(spec); }, hu::ModelError);
    spec = baseSpec();
    spec.burstiness = 1.0;
    EXPECT_THROW({ htr::SyntheticWorkload g(spec); }, hu::ModelError);
    spec = baseSpec();
    spec.minSectors = 100;
    spec.meanSectors = 8;
    EXPECT_THROW({ htr::SyntheticWorkload g(spec); }, hu::ModelError);
}

TEST(Trace, LoadSpcFormat)
{
    const std::string path = "/tmp/hddtherm_spc_test.txt";
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        // Unordered timestamps, both opcode spellings, byte sizes.
        std::fputs("0,20941264,8192,W,0.551706\n", f);
        std::fputs("1,9288928,4096, R ,0.100000\n", f);
        std::fputs("# comment\n", f);
        std::fputs("0,684266,512,r,0.300000\n", f);
        std::fclose(f);
    }
    const auto t = htr::Trace::loadSpc(path);
    std::remove(path.c_str());
    ASSERT_EQ(t.size(), 3u);
    // Sorted by timestamp.
    EXPECT_DOUBLE_EQ(t.records()[0].time, 0.1);
    EXPECT_EQ(t.records()[0].device, 1);
    EXPECT_EQ(t.records()[0].sectors, 8); // 4096 B
    EXPECT_FALSE(t.records()[0].write);
    EXPECT_EQ(t.records()[1].sectors, 1); // 512 B
    EXPECT_EQ(t.records()[2].sectors, 16); // 8192 B
    EXPECT_TRUE(t.records()[2].write);
    EXPECT_EQ(t.records()[2].lba, 20941264);
}

TEST(Trace, LoadSpcRejectsGarbage)
{
    const std::string path = "/tmp/hddtherm_spc_bad.txt";
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        std::fputs("0,1,512,X,0.1\n", f);
        std::fclose(f);
    }
    EXPECT_THROW(htr::Trace::loadSpc(path), hu::ModelError);
    std::remove(path.c_str());
    EXPECT_THROW(htr::Trace::loadSpc("/nonexistent/spc.txt"),
                 hu::ModelError);
}

TEST(Analyze, EmptyTraceIsSafe)
{
    const auto stats = htr::analyze(htr::Trace("empty"));
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_DOUBLE_EQ(stats.arrivalRatePerSec, 0.0);
}
