/**
 * @file
 * Unit tests of the mechanical positioning model.
 */
#include <gtest/gtest.h>

#include "hdd/drive_catalog.h"
#include "sim/mechanics.h"
#include "util/error.h"

namespace hh = hddtherm::hdd;
namespace hs = hddtherm::sim;

namespace {

struct Rig
{
    hs::DiskAddressMap map;
    hh::SeekModel seek;
    hs::DiskMechanics mech;

    explicit Rig(double rpm = 15000.0)
        : map(hh::findDrive("Seagate Cheetah 15K.3")->layout()),
          seek(hh::SeekProfile::forDiameter(2.6), map.layout().cylinders()),
          mech(map, seek, rpm)
    {}
};

} // namespace

TEST(Mechanics, PhaseAdvancesWithTime)
{
    Rig rig(15000.0); // 4 ms per revolution
    EXPECT_NEAR(rig.mech.revolutionSec(), 0.004, 1e-12);
    EXPECT_NEAR(rig.mech.phaseAt(0.0), 0.0, 1e-12);
    EXPECT_NEAR(rig.mech.phaseAt(0.001), 0.25, 1e-9);
    EXPECT_NEAR(rig.mech.phaseAt(0.004), 0.0, 1e-9);
    EXPECT_NEAR(rig.mech.phaseAt(0.0055), 0.375, 1e-9);
}

TEST(Mechanics, PhaseContinuousAcrossRpmChange)
{
    Rig rig(15000.0);
    const double before = rig.mech.phaseAt(0.003);
    rig.mech.setRpm(30000.0, 0.003);
    EXPECT_NEAR(rig.mech.phaseAt(0.003), before, 1e-12);
    // Half the revolution time now.
    EXPECT_NEAR(rig.mech.revolutionSec(), 0.002, 1e-12);
}

TEST(Mechanics, ZeroSeekSameCylinder)
{
    Rig rig;
    const hs::PhysicalAddress addr{0, 0, 0, 0};
    const auto bd = rig.mech.service(addr, 1, 0.0);
    EXPECT_DOUBLE_EQ(bd.seekSec, 0.0);
    EXPECT_EQ(rig.mech.lastSeekDistance(), 0);
}

TEST(Mechanics, SeekChargedForDistance)
{
    Rig rig;
    rig.mech.setHeadCylinder(0);
    const int target = rig.map.layout().cylinders() - 1;
    const auto phys = hs::PhysicalAddress{target, 0, 0, 0};
    const auto bd = rig.mech.service(phys, 1, 0.0);
    EXPECT_NEAR(bd.seekSec, rig.seek.seekTimeSec(target), 1e-12);
    EXPECT_EQ(rig.mech.headCylinder(), target);
}

TEST(Mechanics, RotationalLatencyBoundedByOneRevolution)
{
    Rig rig;
    for (int s = 0; s < rig.map.sectorsPerTrack(0); s += 37) {
        hs::PhysicalAddress addr{0, 0, s, 0};
        const auto bd = rig.mech.service(addr, 1, 0.1234 * s);
        EXPECT_GE(bd.rotationSec, 0.0);
        EXPECT_LT(bd.rotationSec, rig.mech.revolutionSec());
    }
}

TEST(Mechanics, RotationalLatencyHitsExactSector)
{
    Rig rig;
    // At t=0 the head is over sector 0 of any track.  Requesting sector k
    // costs exactly k/N revolutions.
    const int per_track = rig.map.sectorsPerTrack(0);
    const int k = per_track / 4;
    hs::PhysicalAddress addr{0, 0, k, 0};
    const auto bd = rig.mech.service(addr, 1, 0.0);
    EXPECT_NEAR(bd.rotationSec,
                double(k) / per_track * rig.mech.revolutionSec(), 1e-9);
}

TEST(Mechanics, TransferTimeProportionalToSectors)
{
    Rig rig;
    hs::PhysicalAddress addr{0, 0, 0, 0};
    const auto one = rig.mech.service(addr, 1, 0.0);
    rig.mech.setHeadCylinder(0);
    const auto ten = rig.mech.service(addr, 10, 0.0);
    EXPECT_NEAR(ten.transferSec, 10.0 * one.transferSec, 1e-9);
}

TEST(Mechanics, HigherRpmIsFasterEndToEnd)
{
    Rig slow(10000.0), fast(20000.0);
    hs::PhysicalAddress addr{5000, 2, 100, 0};
    const auto bd_slow = slow.mech.service(addr, 64, 0.0);
    const auto bd_fast = fast.mech.service(addr, 64, 0.0);
    // Same seek; rotation + transfer shrink with RPM.
    EXPECT_DOUBLE_EQ(bd_slow.seekSec, bd_fast.seekSec);
    EXPECT_LT(bd_fast.rotationSec + bd_fast.transferSec,
              bd_slow.rotationSec + bd_slow.transferSec);
}

TEST(Mechanics, TrackBoundaryCrossingChargesHeadSwitch)
{
    Rig rig;
    const int per_track = rig.map.sectorsPerTrack(0);
    hs::PhysicalAddress addr{0, 0, per_track - 2, 0};
    const auto bd = rig.mech.service(addr, 4, 0.0);
    EXPECT_EQ(bd.trackSwitches, 1);
}

TEST(Mechanics, MultiTrackTransferCrossesCylinders)
{
    Rig rig;
    const auto per_cyl = rig.map.sectorsPerCylinder(0);
    hs::PhysicalAddress addr{0, 0, 0, 0};
    const auto bd = rig.mech.service(addr, int(per_cyl) + 10, 0.0);
    EXPECT_EQ(rig.mech.headCylinder(), 1);
    EXPECT_EQ(bd.trackSwitches, rig.map.layout().surfaces());
}

TEST(Mechanics, RejectsInvalidService)
{
    Rig rig;
    hs::PhysicalAddress addr{0, 0, 0, 0};
    EXPECT_THROW(rig.mech.service(addr, 0, 0.0),
                 hddtherm::util::ModelError);
}
