# Integration check: every bench invoked with `--csv dir` must drop the
# provenance/metrics artifact triple — manifest.json (with a git_sha and
# the command line), metrics.prom (Prometheus text exposition), and
# metrics.csv (the util::table path) — beside its table CSVs.
#
# Invoked via `cmake -DBENCHES=path1|path2 -DWORK_DIR=dir -P <this file>`
# from the ctest entry registered in tests/CMakeLists.txt ('|' separates
# paths; a raw ';' would need escaping through two quoting layers).

if(NOT DEFINED BENCHES OR NOT DEFINED WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DBENCHES=... -DWORK_DIR=... -P "
                        "bench_artifacts_check.cmake")
endif()

string(REPLACE "|" ";" BENCHES "${BENCHES}")

file(REMOVE_RECURSE "${WORK_DIR}")

foreach(bench IN LISTS BENCHES)
    get_filename_component(name "${bench}" NAME)
    set(dir "${WORK_DIR}/${name}")
    file(MAKE_DIRECTORY "${dir}")

    execute_process(COMMAND "${bench}" --csv "${dir}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${name} --csv exited with ${rc}")
    endif()

    foreach(artifact manifest.json metrics.prom metrics.csv)
        if(NOT EXISTS "${dir}/${artifact}")
            message(FATAL_ERROR "${name} did not write ${artifact}")
        endif()
    endforeach()

    file(READ "${dir}/manifest.json" manifest)
    foreach(key git_sha command seed config_hash started_utc
            resume_from resume_config_hash resume_epoch)
        string(FIND "${manifest}" "\"${key}\"" pos)
        if(pos EQUAL -1)
            message(FATAL_ERROR
                "${name} manifest.json lacks \"${key}\": ${manifest}")
        endif()
    endforeach()
    string(FIND "${manifest}" "${name}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR "${name} manifest.json does not name the "
                            "bench: ${manifest}")
    endif()

    file(READ "${dir}/metrics.prom" prom)
    string(FIND "${prom}" "# TYPE hddtherm_" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR "${name} metrics.prom has no hddtherm_ "
                            "metric: ${prom}")
    endif()

    file(READ "${dir}/metrics.csv" csv)
    string(FIND "${csv}" "metric,kind,label,value" pos)
    if(NOT pos EQUAL 0)
        message(FATAL_ERROR "${name} metrics.csv lacks the exporter "
                            "header: ${csv}")
    endif()

    message(STATUS "${name}: artifact triple OK")
endforeach()
