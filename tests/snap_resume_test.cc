/**
 * @file
 * Property tests of the checkpoint/restore contract: a resumed run is
 * bit-identical to the uninterrupted one — same results, same post-resume
 * checkpoint bytes — for standalone co-sims (fault-free and faulted) and
 * for fleet runs across executor thread counts.  Also covers the resume
 * preconditions that must fail loudly: config-hash and
 * workload-fingerprint mismatches, and unsnapshottable kernels.
 */
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "engine/kernel.h"
#include "fault/fault_schedule.h"
#include "fleet/fleet_sim.h"
#include "snap/checkpoint.h"
#include "snap/format.h"
#include "util/error.h"

namespace fs = std::filesystem;
namespace hd = hddtherm::dtm;
namespace he = hddtherm::engine;
namespace hf = hddtherm::fleet;
namespace hfault = hddtherm::fault;
namespace hs = hddtherm::sim;
namespace hsnap = hddtherm::snap;
namespace hu = hddtherm::util;

namespace {

/// A hot 2.6" drive (steady state above the envelope at full duty) so
/// gate/governor policies actually actuate during the test window.
hs::SystemConfig
hotDrive()
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = 24534.0;
    cfg.disk.rpmChangeSecPerKrpm = 0.02;
    cfg.disks = 1;
    return cfg;
}

std::vector<hs::IoRequest>
fixedWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        out.push_back(r);
    }
    return out;
}

/// Strict equality of every deterministic co-sim result field.
void
expectSameResult(const hd::CoSimResult& a, const hd::CoSimResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.meanTempC, b.meanTempC);
    EXPECT_EQ(a.envelopeExceededSec, b.envelopeExceededSec);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.meanVcmDuty, b.meanVcmDuty);
    EXPECT_EQ(a.invalidReadings, b.invalidReadings);
    EXPECT_EQ(a.failSafeActivations, b.failSafeActivations);
    EXPECT_EQ(a.failSafeSec, b.failSafeSec);
}

void
expectSameFleetResult(const hf::FleetResult& a, const hf::FleetResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.meanLatencyMs, b.meanLatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.maxDriveTempC, b.maxDriveTempC);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.shards, b.shards);
    ASSERT_EQ(a.chassis.size(), b.chassis.size());
    for (std::size_t i = 0; i < a.chassis.size(); ++i) {
        EXPECT_EQ(a.chassis[i].peakDriveTempC, b.chassis[i].peakDriveTempC);
        EXPECT_EQ(a.chassis[i].gateEvents, b.chassis[i].gateEvents);
    }
}

fs::path
scratchDir(const std::string& name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
readFileBytes(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/// Checkpoint files in @p dir, sorted by index.
std::vector<fs::path>
checkpointFiles(const fs::path& dir)
{
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir))
        files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

/// Serialized saveSections() bytes of a finished engine.
std::vector<std::uint8_t>
endStateBytes(const hd::CoSimEngine& engine)
{
    hsnap::CheckpointWriter out(0);
    engine.saveSections(out);
    return out.serialize();
}

hsnap::CheckpointPolicy
policyFor(const fs::path& dir, double every_sec,
          std::uint64_t every_epochs = 0)
{
    hsnap::CheckpointPolicy policy;
    policy.directory = dir.string();
    policy.everySec = every_sec;
    policy.everyEpochs = every_epochs;
    policy.retain = 1000; // keep everything: tests pick mid-run files
    return policy;
}

/// Run checkpoint → resume → completion and require bit-identity with
/// the uninterrupted run, including the checkpoints the resumed run
/// writes after the resume point.
void
checkResumeBitIdentity(const hd::CoSimConfig& cfg, const std::string& tag)
{
    const auto workload = fixedWorkload(
        400, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    const auto dir_a = scratchDir("hddtherm-snap-resume-" + tag + "-a");
    hd::CoSimEngine full(cfg);
    full.enableCheckpoints(policyFor(dir_a, 1.0));
    full.start(workload);
    full.advanceToCompletion();
    const auto files_a = checkpointFiles(dir_a);
    ASSERT_GE(files_a.size(), 2u) << "cadence produced too few checkpoints "
                                     "for a mid-run resume";
    const fs::path mid = files_a[files_a.size() / 2];

    const auto dir_b = scratchDir("hddtherm-snap-resume-" + tag + "-b");
    hd::CoSimEngine resumed(cfg);
    resumed.enableCheckpoints(policyFor(dir_b, 1.0));
    resumed.restoreFromCheckpoint(mid.string(), workload);
    resumed.advanceToCompletion();

    expectSameResult(full.result(), resumed.result());
    EXPECT_EQ(endStateBytes(full), endStateBytes(resumed));
    // Checkpoints written after the resume point must be byte-identical
    // to the uninterrupted run's files of the same index.
    const auto files_b = checkpointFiles(dir_b);
    EXPECT_GE(files_b.size(), 1u);
    for (const auto& file : files_b) {
        const fs::path original = dir_a / file.filename();
        ASSERT_TRUE(fs::exists(original)) << file.filename();
        EXPECT_EQ(readFileBytes(file), readFileBytes(original))
            << file.filename();
    }
    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
}

} // namespace

TEST(SnapResume, CheckpointingIsAPureObserver)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    const auto workload = fixedWorkload(
        300, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    hd::CoSimEngine bare(cfg);
    bare.start(workload);
    bare.advanceToCompletion();

    const auto dir = scratchDir("hddtherm-snap-resume-observer");
    hd::CoSimEngine checkpointed(cfg);
    checkpointed.enableCheckpoints(policyFor(dir, 0.5));
    checkpointed.start(workload);
    checkpointed.advanceToCompletion();

    expectSameResult(bare.result(), checkpointed.result());
    fs::remove_all(dir);
}

TEST(SnapResume, FaultFreeGateRunResumesBitIdentically)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    checkResumeBitIdentity(cfg, "gate");
}

TEST(SnapResume, FaultedGovernorRunResumesBitIdentically)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GovernSpeed;
    cfg.rpmLadder = {15020.0, 18000.0, 21000.0, 24534.0};
    // Sensor noise exercises the fault player's RNG stream and the
    // dropout window exercises the fail-safe path across a resume.
    cfg.faults = hfault::FaultSchedule(
        {
            {0.5, hfault::FaultKind::SensorNoise, 0.3, 3.0, -1},
            {1.2, hfault::FaultKind::SensorDropout, 0.0, 1.0, -1},
            {2.0, hfault::FaultKind::AmbientSpike, 4.0, 2.0, -1},
        },
        0x5eedu);
    checkResumeBitIdentity(cfg, "governor");
}

TEST(SnapResume, RejectsWorkloadFingerprintMismatch)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    const auto workload = fixedWorkload(
        200, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    const auto dir = scratchDir("hddtherm-snap-resume-fingerprint");
    hd::CoSimEngine engine(cfg);
    engine.enableCheckpoints(policyFor(dir, 1e9));
    engine.start(workload);
    engine.advanceTo(1.0);
    const auto path = engine.writeCheckpoint();

    // Same length, one request nudged: the fingerprint must catch it.
    auto tampered = workload;
    tampered[42].lba += 64;
    hd::CoSimEngine fresh(cfg);
    EXPECT_THROW(fresh.restoreFromCheckpoint(path, tampered),
                 hu::ModelError);

    // Wrong length fails too.
    auto shorter = workload;
    shorter.pop_back();
    hd::CoSimEngine fresh2(cfg);
    EXPECT_THROW(fresh2.restoreFromCheckpoint(path, shorter),
                 hu::ModelError);

    // The pristine workload restores fine.
    hd::CoSimEngine fresh3(cfg);
    fresh3.restoreFromCheckpoint(path, workload);
    fresh3.advanceToCompletion();
    EXPECT_TRUE(fresh3.finished());
    fs::remove_all(dir);
}

TEST(SnapResume, RejectsConfigHashMismatch)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    const auto workload = fixedWorkload(
        100, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    const auto dir = scratchDir("hddtherm-snap-resume-confighash");
    hd::CoSimEngine engine(cfg);
    engine.enableCheckpoints(policyFor(dir, 1e9));
    engine.start(workload);
    engine.advanceTo(0.5);
    const auto path = engine.writeCheckpoint();

    auto other = cfg;
    other.policy = hd::DtmPolicy::None;
    hd::CoSimEngine fresh(other);
    EXPECT_THROW(fresh.restoreFromCheckpoint(path, workload),
                 hu::ModelError);
    fs::remove_all(dir);
}

TEST(SnapResume, FleetResumesBitIdenticallyAcrossThreadCounts)
{
    hf::FleetConfig cfg;
    cfg.racks = 1;
    cfg.rack.chassisCount = 2;
    cfg.chassis.bays = 3;
    cfg.bay.system = hotDrive();
    cfg.bay.policy = hd::DtmPolicy::GateRequests;
    cfg.workload.requests = 150;
    cfg.workload.arrivalRatePerSec = 100.0;
    cfg.epochSec = 0.25;
    cfg.maxSimulatedSec = 600.0;
    cfg.seed = 7;

    const auto dir = scratchDir("hddtherm-snap-resume-fleet");
    hf::FleetSimulation fleet(cfg);
    const auto ckpt = policyFor(dir, 0.0, 20);
    const auto full = fleet.run(2, nullptr, &ckpt);

    const auto files = checkpointFiles(dir);
    ASSERT_GE(files.size(), 2u);
    const auto mid = files[files.size() / 2];
    for (const int threads : {1, 4}) {
        const auto resumed = fleet.resume(mid.string(), threads);
        expectSameFleetResult(full, resumed);
    }
    fs::remove_all(dir);
}

TEST(KernelSnapshot, UntaggedPendingEventsBlockSave)
{
    he::SimKernel kernel;
    kernel.enableSnapshots(true);
    kernel.schedule(1.0, [] {});
    EXPECT_EQ(kernel.untaggedPending(), 1u);
    hsnap::StateWriter w("engine.kernel");
    EXPECT_THROW(kernel.saveState(w), hu::ModelError);
    // Once the opaque event fires the kernel is snapshottable again.
    kernel.runAll();
    EXPECT_EQ(kernel.untaggedPending(), 0u);
    hsnap::StateWriter w2("engine.kernel");
    EXPECT_NO_THROW(kernel.saveState(w2));
}

TEST(KernelSnapshot, UnnamedPeriodicTasksAreRejectedUpFront)
{
    // A snapshot-enabled kernel refuses anonymous periodic tasks at
    // registration (a name is the task's checkpoint identity), so an
    // unsnapshottable task can never sneak into a checkpointed run.
    he::SimKernel kernel;
    kernel.enableSnapshots(true);
    EXPECT_THROW(kernel.schedulePeriodic(he::SimKernel::kDefaultDomain,
                                         1.0, [] { return false; }),
                 hu::ModelError);
}

TEST(KernelSnapshot, RoundTripsTaggedEventsAndNamedTasks)
{
    const auto script = [](he::SimKernel& kernel,
                           std::vector<std::string>& log) {
        const auto dom = kernel.registerDomain("test", -1);
        hsnap::EventTag tag;
        tag.kind = 100;
        tag.w[0] = 5;
        kernel.schedule(2.5, dom, tag,
                        [&log] { log.push_back("tagged"); });
        kernel.schedulePeriodic(dom, 1.0, "beat", [&log] {
            log.push_back("beat@" + std::to_string(log.size()));
            return log.size() < 6;
        });
    };

    he::SimKernel a;
    a.enableSnapshots(true);
    std::vector<std::string> log_a;
    script(a, log_a);
    hsnap::StateWriter saved("engine.kernel");
    a.saveState(saved);
    a.runAll();

    he::SimKernel b;
    b.registerDomain("test", -1);
    b.enableSnapshots(true);
    std::vector<std::string> log_b;
    const auto buf = saved.buffer();
    hsnap::StateReader r("engine.kernel", buf.data(), buf.size());
    b.loadState(
        r,
        [&log_b](const hsnap::EventTag& tag) -> he::SimKernel::Callback {
            EXPECT_EQ(tag.kind, 100u);
            EXPECT_EQ(tag.w[0], 5u);
            return [&log_b] { log_b.push_back("tagged"); };
        },
        [&log_b](const std::string& name)
            -> he::SimKernel::PeriodicCallback {
            EXPECT_EQ(name, "beat");
            return [&log_b] {
                log_b.push_back("beat@" + std::to_string(log_b.size()));
                return log_b.size() < 6;
            };
        });
    b.runAll();

    EXPECT_EQ(log_a, log_b);
    EXPECT_EQ(a.now(), b.now());
}
