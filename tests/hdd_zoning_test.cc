/**
 * @file
 * Unit and property tests for the ZBR layout model (paper §3.1).
 */
#include <gtest/gtest.h>

#include "hdd/drive_catalog.h"
#include "hdd/recording.h"
#include "hdd/zoning.h"
#include "util/error.h"

namespace hh = hddtherm::hdd;
namespace hu = hddtherm::util;

namespace {

hh::ZoneModel
cheetah15k3(int zones = 30)
{
    // Seagate Cheetah 15K.3: 533 KBPI, 64 KTPI, 2.6" platters, 4 platters.
    hh::PlatterGeometry g;
    g.diameterInches = 2.6;
    g.platters = 4;
    return hh::ZoneModel(g, {533e3, 64e3}, zones);
}

} // namespace

TEST(ZoneModel, CylinderCountMatchesPaperFormula)
{
    const auto zm = cheetah15k3();
    // eta * (ro - ri) * TPI = (2/3) * 0.65 * 64000 = 27733.
    EXPECT_EQ(zm.cylinders(), 27733);
}

TEST(ZoneModel, ServoBitsAreGrayCodeWidth)
{
    const auto zm = cheetah15k3();
    // ceil(log2(27733)) = 15.
    EXPECT_EQ(zm.servoBitsPerSector(), 15);
}

TEST(ZoneModel, SubTerabitEccBits)
{
    const auto zm = cheetah15k3();
    EXPECT_EQ(zm.eccBitsPerSector(), hh::kEccBitsSubTerabit);
}

TEST(ZoneModel, TerabitEccKicksIn)
{
    hh::PlatterGeometry g;
    g.diameterInches = 1.6;
    // Slightly above the paper's 1.85 MBPI x 540 KTPI point, which lands
    // a hair below 1e12 bits/in^2.
    hh::RecordingTech tech{1.9e6, 540e3};
    ASSERT_TRUE(tech.isTerabit());
    const hh::ZoneModel zm(g, tech);
    EXPECT_EQ(zm.eccBitsPerSector(), hh::kEccBitsTerabit);
}

TEST(ZoneModel, TrackRadiusEndpoints)
{
    const auto zm = cheetah15k3();
    EXPECT_DOUBLE_EQ(zm.trackRadiusInches(0), 1.3);
    EXPECT_DOUBLE_EQ(zm.trackRadiusInches(zm.cylinders() - 1), 0.65);
}

TEST(ZoneModel, TrackRadiusIsStrictlyDecreasing)
{
    const auto zm = cheetah15k3();
    double prev = zm.trackRadiusInches(0);
    for (int c = 1; c < zm.cylinders(); c += 997) {
        const double r = zm.trackRadiusInches(c);
        EXPECT_LT(r, prev);
        prev = r;
    }
}

TEST(ZoneModel, ZonesPartitionCylinders)
{
    const auto zm = cheetah15k3();
    int total = 0;
    int expected_first = 0;
    for (int z = 0; z < zm.zones(); ++z) {
        const auto& zone = zm.zone(z);
        EXPECT_EQ(zone.firstCylinder, expected_first);
        EXPECT_GT(zone.cylinders, 0);
        expected_first += zone.cylinders;
        total += zone.cylinders;
    }
    EXPECT_EQ(total, zm.cylinders());
}

TEST(ZoneModel, OuterZonesHoldMoreSectors)
{
    const auto zm = cheetah15k3();
    for (int z = 1; z < zm.zones(); ++z) {
        EXPECT_GT(zm.zone(z - 1).userSectorsPerTrack,
                  zm.zone(z).userSectorsPerTrack);
        EXPECT_GT(zm.zone(z - 1).rawSectorsPerTrack,
                  zm.zone(z).rawSectorsPerTrack);
    }
}

TEST(ZoneModel, UserSectorsNeverExceedRaw)
{
    const auto zm = cheetah15k3();
    for (int z = 0; z < zm.zones(); ++z) {
        EXPECT_LE(zm.zone(z).userSectorsPerTrack,
                  zm.zone(z).rawSectorsPerTrack);
    }
    EXPECT_LE(zm.totalUserSectors(), zm.totalRawSectors());
}

TEST(ZoneModel, ZoneOfCylinderIsConsistent)
{
    const auto zm = cheetah15k3();
    for (int c = 0; c < zm.cylinders(); c += 313) {
        const int z = zm.zoneOfCylinder(c);
        const auto& zone = zm.zone(z);
        EXPECT_GE(c, zone.firstCylinder);
        EXPECT_LT(c, zone.firstCylinder + zone.cylinders);
    }
    EXPECT_EQ(zm.zoneOfCylinder(zm.cylinders() - 1), zm.zones() - 1);
}

TEST(ZoneModel, RejectsInvalidInput)
{
    hh::PlatterGeometry g;
    EXPECT_THROW(hh::ZoneModel(g, {0.0, 64e3}), hu::ModelError);
    EXPECT_THROW(hh::ZoneModel(g, {533e3, 0.0}), hu::ModelError);
    EXPECT_THROW(hh::ZoneModel(g, {533e3, 64e3}, 0), hu::ModelError);
    g.platters = 0;
    EXPECT_THROW(hh::ZoneModel(g, {533e3, 64e3}), hu::ModelError);
}

TEST(ZoneModel, FewCylindersClampZoneCount)
{
    hh::PlatterGeometry g;
    g.diameterInches = 2.6;
    const hh::ZoneModel zm(g, {500e3, 100.0}, 30); // ~21 cylinders
    EXPECT_LE(zm.zones(), zm.cylinders());
    EXPECT_GE(zm.zones(), 1);
}

TEST(ZoneModel, RawCapacityMatchesClosedForm)
{
    const auto zm = cheetah15k3();
    // eta * nsurf * pi * (ro^2 - ri^2) * BPI * TPI
    const double expected = (2.0 / 3.0) * 8 * 3.14159265358979 *
                            (1.3 * 1.3 - 0.65 * 0.65) * 533e3 * 64e3;
    EXPECT_NEAR(zm.rawCapacityBits(), expected, expected * 1e-9);
}

/// Property sweep: layout invariants hold across zone counts.
class ZoneCountSweep : public ::testing::TestWithParam<int>
{};

TEST_P(ZoneCountSweep, InvariantsHold)
{
    const int zones = GetParam();
    const auto zm = cheetah15k3(zones);
    EXPECT_EQ(zm.zones(), zones);
    int total = 0;
    for (int z = 0; z < zm.zones(); ++z)
        total += zm.zone(z).cylinders;
    EXPECT_EQ(total, zm.cylinders());
    EXPECT_GT(zm.totalUserSectors(), 0);
    // More zones -> less ZBR waste -> no fewer total user sectors than a
    // single-zone layout.
    const auto one_zone = cheetah15k3(1);
    EXPECT_GE(zm.totalUserSectors(), one_zone.totalUserSectors());
}

INSTANTIATE_TEST_SUITE_P(Zones, ZoneCountSweep,
                         ::testing::Values(1, 2, 5, 10, 15, 30, 50, 100));

/// Property sweep: capacity grows monotonically with recording density.
class DensitySweep : public ::testing::TestWithParam<double>
{};

TEST_P(DensitySweep, CapacityMonotoneInBpi)
{
    const double scale = GetParam();
    hh::PlatterGeometry g;
    g.diameterInches = 2.6;
    const hh::ZoneModel base(g, {400e3, 50e3});
    const hh::ZoneModel denser(g, {400e3 * scale, 50e3});
    EXPECT_GE(denser.totalUserSectors(), base.totalUserSectors());
}

TEST_P(DensitySweep, CylindersMonotoneInTpi)
{
    const double scale = GetParam();
    hh::PlatterGeometry g;
    g.diameterInches = 2.6;
    const hh::ZoneModel base(g, {400e3, 50e3});
    const hh::ZoneModel denser(g, {400e3, 50e3 * scale});
    EXPECT_GE(denser.cylinders(), base.cylinders());
}

INSTANTIATE_TEST_SUITE_P(Scales, DensitySweep,
                         ::testing::Values(1.0, 1.1, 1.5, 2.0, 4.0));

TEST(RecordingTech, DerivedQuantities)
{
    hh::RecordingTech tech{600e3, 100e3};
    EXPECT_DOUBLE_EQ(tech.arealDensity(), 6e10);
    EXPECT_DOUBLE_EQ(tech.bitAspectRatio(), 6.0);
    EXPECT_FALSE(tech.isTerabit());
}
