/**
 * @file
 * Unit and property tests of the three-point seek model (paper §3.2).
 */
#include <gtest/gtest.h>

#include "hdd/seek.h"
#include "util/error.h"

namespace hh = hddtherm::hdd;
namespace hu = hddtherm::util;

namespace {

hh::SeekModel
model26(int cylinders = 27733)
{
    return hh::SeekModel(hh::SeekProfile::forDiameter(2.6), cylinders);
}

} // namespace

TEST(SeekProfile, AnchorsAreDatasheetLike)
{
    const auto p = hh::SeekProfile::forDiameter(2.6);
    EXPECT_NEAR(p.trackToTrackMs, 0.4, 1e-9);
    EXPECT_NEAR(p.averageMs, 3.6, 1e-9);
    EXPECT_NEAR(p.fullStrokeMs, 7.4, 1e-9);
}

TEST(SeekProfile, SmallerPlattersSeekFaster)
{
    const auto small = hh::SeekProfile::forDiameter(1.6);
    const auto big = hh::SeekProfile::forDiameter(3.7);
    EXPECT_LT(small.averageMs, big.averageMs);
    EXPECT_LT(small.fullStrokeMs, big.fullStrokeMs);
    EXPECT_LT(small.trackToTrackMs, big.trackToTrackMs);
}

TEST(SeekModel, ZeroDistanceIsFree)
{
    EXPECT_DOUBLE_EQ(model26().seekTimeMs(0), 0.0);
}

TEST(SeekModel, KeyPointsMatchProfile)
{
    const auto m = model26();
    EXPECT_DOUBLE_EQ(m.seekTimeMs(1), 0.4);
    // Average-distance seek (cyl/3) returns the average seek time.
    EXPECT_NEAR(m.seekTimeMs(27733 / 3), 3.6, 0.01);
    EXPECT_NEAR(m.seekTimeMs(27732), 7.4, 1e-9);
}

TEST(SeekModel, MonotoneNonDecreasing)
{
    const auto m = model26();
    double prev = 0.0;
    for (int d = 0; d < m.cylinders(); d += 101) {
        const double t = m.seekTimeMs(d);
        EXPECT_GE(t, prev) << "at distance " << d;
        prev = t;
    }
}

TEST(SeekModel, ShortSeeksAboveTrackToTrack)
{
    const auto m = model26();
    for (int d = 1; d < 10; ++d) {
        EXPECT_GE(m.seekTimeMs(d), m.profile().trackToTrackMs);
        EXPECT_LT(m.seekTimeMs(d), m.profile().averageMs);
    }
}

TEST(SeekModel, SecondsConversion)
{
    const auto m = model26();
    EXPECT_DOUBLE_EQ(m.seekTimeSec(1), 0.0004);
}

TEST(SeekModel, RejectsOutOfRange)
{
    const auto m = model26();
    EXPECT_THROW(m.seekTimeMs(-1), hu::ModelError);
    EXPECT_THROW(m.seekTimeMs(m.cylinders()), hu::ModelError);
}

TEST(SeekModel, RejectsDisorderedProfile)
{
    hh::SeekProfile p;
    p.trackToTrackMs = 2.0;
    p.averageMs = 1.0;
    p.fullStrokeMs = 3.0;
    EXPECT_THROW(hh::SeekModel(p, 1000), hu::ModelError);
}

/// Property sweep across platter sizes: seek curves stay ordered and
/// bounded by their profile everywhere.
class SeekDiameterSweep : public ::testing::TestWithParam<double>
{};

TEST_P(SeekDiameterSweep, CurveBoundedByProfile)
{
    const double diameter = GetParam();
    const auto profile = hh::SeekProfile::forDiameter(diameter);
    const hh::SeekModel m(profile, 20000);
    for (int d = 1; d < 20000; d += 499) {
        const double t = m.seekTimeMs(d);
        EXPECT_GE(t, profile.trackToTrackMs);
        EXPECT_LE(t, profile.fullStrokeMs + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Diameters, SeekDiameterSweep,
                         ::testing::Values(1.6, 2.1, 2.6, 3.0, 3.3, 3.7));
