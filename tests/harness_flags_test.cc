/**
 * @file
 * FlagParser contract tests: strict numeric parsing (the regression
 * against the old atof/atoll loops that read "abc" as 0 and wrapped
 * negative counts through size_t), typed options, positionals, loud
 * rejection of unknown flags and malformed values, pass-through mode,
 * and the generated --help text.
 */
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/flags.h"
#include "util/error.h"

namespace hh = hddtherm::harness;
namespace hu = hddtherm::util;

namespace {

/// The ModelError message a callable throws ("" = it did not throw).
template <typename Fn>
std::string
errorOf(Fn&& fn)
{
    try {
        fn();
    } catch (const hu::ModelError& e) {
        return e.what();
    }
    return "";
}

} // namespace

TEST(StrictParse, RejectsTextTheOldAtofLoopsReadAsZero)
{
    // std::atof("abc") == 0.0 and std::atoll("12x") == 12: both produced
    // silently wrong runs before the harness.
    EXPECT_THROW(hh::parseDouble("--rpm", "abc"), hu::ModelError);
    EXPECT_THROW(hh::parseDouble("--rpm", "12x"), hu::ModelError);
    EXPECT_THROW(hh::parseDouble("--rpm", ""), hu::ModelError);
    EXPECT_THROW(hh::parseInt64("--n", "7.5"), hu::ModelError);
    EXPECT_THROW(hh::parseInt("--n", "five"), hu::ModelError);
    EXPECT_DOUBLE_EQ(hh::parseDouble("--rpm", "1.5e4"), 15000.0);
    EXPECT_EQ(hh::parseInt64("--n", "-12"), -12);
}

TEST(StrictParse, RejectsNonFiniteDoubles)
{
    EXPECT_THROW(hh::parseDouble("--rpm", "nan"), hu::ModelError);
    EXPECT_THROW(hh::parseDouble("--rpm", "inf"), hu::ModelError);
    EXPECT_THROW(hh::parseDouble("--rpm", "1e999"), hu::ModelError);
}

TEST(StrictParse, RejectsNegativesForUnsignedInsteadOfWrapping)
{
    // size_t(std::atoll("-5")) used to wrap to 18446744073709551611.
    EXPECT_THROW(hh::parseSizeT("--requests", "-5"), hu::ModelError);
    EXPECT_THROW(hh::parseUint64("--seed", "-1"), hu::ModelError);
    EXPECT_EQ(hh::parseSizeT("--requests", "42"), 42u);
    EXPECT_EQ(hh::parseUint64("--seed", "7"), 7u);
}

TEST(StrictParse, ErrorsNameTheFlagAndTheOffendingText)
{
    const auto msg = errorOf([] { hh::parseDouble("--rpm", "abc"); });
    EXPECT_NE(msg.find("--rpm"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
}

TEST(StrictParse, IntRangeIsEnforced)
{
    EXPECT_THROW(hh::parseInt("--n", "99999999999"), hu::ModelError);
    EXPECT_EQ(hh::parseInt("--n", "2147483647"), 2147483647);
}

TEST(StrictParse, ListsAreStrictToo)
{
    EXPECT_EQ(hh::parseIntList("--threads", "1,2,4"),
              (std::vector<int>{1, 2, 4}));
    EXPECT_THROW(hh::parseIntList("--threads", "1,,4"), hu::ModelError);
    EXPECT_THROW(hh::parseIntList("--threads", "1,x"), hu::ModelError);
    EXPECT_EQ(hh::parseDoubleList("--ladder", "1.5,2"),
              (std::vector<double>{1.5, 2.0}));
}

TEST(FlagParser, ParsesTypedOptionsAndPositionals)
{
    double rpm = 0.0;
    std::size_t requests = 10;
    bool fast = false;
    std::string out;
    std::size_t pos = 5;
    hh::FlagParser flags("prog");
    flags.addDouble("--rpm", &rpm, "R", "spindle speed");
    flags.addSizeT("--requests", &requests, "N", "count");
    flags.addSwitch("--fast", &fast, "go fast");
    flags.addString("--out", &out, "FILE", "output");
    flags.addPositionalSizeT("n", &pos, "positional count");
    EXPECT_TRUE(flags.parse(
        {"--rpm", "12000", "--requests=99", "--fast", "7", "--out",
         "a.csv"}));
    EXPECT_DOUBLE_EQ(rpm, 12000.0);
    EXPECT_EQ(requests, 99u);
    EXPECT_TRUE(fast);
    EXPECT_EQ(out, "a.csv");
    EXPECT_EQ(pos, 7u);
}

TEST(FlagParser, RejectsUnknownFlagsLoudly)
{
    hh::FlagParser flags("prog");
    const auto msg = errorOf([&] { flags.parse({"--bogus"}); });
    EXPECT_NE(msg.find("--bogus"), std::string::npos) << msg;
}

TEST(FlagParser, RejectsStrayPositionals)
{
    hh::FlagParser flags("prog");
    EXPECT_THROW(flags.parse({"stray"}), hu::ModelError);
}

TEST(FlagParser, RejectsMissingAndMalformedValues)
{
    double rpm = 0.0;
    hh::FlagParser flags("prog");
    flags.addDouble("--rpm", &rpm, "R", "spindle speed");
    EXPECT_THROW(flags.parse({"--rpm"}), hu::ModelError);
    const auto msg = errorOf([&] { flags.parse({"--rpm", "abc"}); });
    EXPECT_NE(msg.find("--rpm"), std::string::npos) << msg;
    EXPECT_NE(msg.find("abc"), std::string::npos) << msg;
}

TEST(FlagParser, SwitchesTakeNoValue)
{
    bool fast = false;
    hh::FlagParser flags("prog");
    flags.addSwitch("--fast", &fast, "go fast");
    EXPECT_THROW(flags.parse({"--fast=yes"}), hu::ModelError);
}

TEST(FlagParser, ChoiceRejectsValuesOutsideTheSet)
{
    std::string policy = "none";
    hh::FlagParser flags("prog");
    flags.addChoice("--policy", &policy, {"none", "gate"}, "DTM policy");
    EXPECT_TRUE(flags.parse({"--policy", "gate"}));
    EXPECT_EQ(policy, "gate");
    const auto msg =
        errorOf([&] { flags.parse({"--policy", "freeze"}); });
    EXPECT_NE(msg.find("freeze"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gate"), std::string::npos)
        << "message should list the valid set: " << msg;
}

TEST(FlagParser, NegativeNumbersAreValuesNotFlags)
{
    double low = 0.0;
    hh::FlagParser flags("prog");
    flags.addDouble("--low", &low, "R", "low speed");
    EXPECT_TRUE(flags.parse({"--low", "-5.5"}));
    EXPECT_DOUBLE_EQ(low, -5.5);
}

TEST(FlagParser, HelpRequestStopsParsing)
{
    hh::FlagParser flags("prog");
    EXPECT_FALSE(flags.parse({"--help"}));
    EXPECT_FALSE(flags.parse({"-h"}));
}

TEST(FlagParser, PassThroughCollectsUnknownArgs)
{
    double rpm = 0.0;
    hh::FlagParser flags("prog");
    flags.addDouble("--rpm", &rpm, "R", "spindle speed");
    flags.passThroughUnknown();
    EXPECT_TRUE(flags.parse(
        {"--benchmark_filter=BM_x", "--rpm", "90", "stray"}));
    EXPECT_DOUBLE_EQ(rpm, 90.0);
    EXPECT_EQ(flags.extraArgs(),
              (std::vector<std::string>{"--benchmark_filter=BM_x",
                                        "stray"}));
}

TEST(FlagParser, HelpTextGolden)
{
    double rpm = 0.0;
    bool fast = false;
    std::size_t requests = 0;
    hh::FlagParser flags("prog", "One-line summary.");
    flags.addPositionalSizeT("requests", &requests, "request count");
    flags.addDouble("--rpm", &rpm, "R", "spindle speed");
    flags.beginGroup("tuning");
    flags.addSwitch("--fast", &fast, "go fast");
    const std::string expected =
        "usage: prog [options] [requests]\n"
        "\n"
        "One-line summary.\n"
        "\n"
        "arguments:\n"
        "  requests                request count\n"
        "\n"
        "options:\n"
        "  --rpm R                 spindle speed\n"
        "\n"
        "tuning:\n"
        "  --fast                  go fast\n"
        "  --help                  show this message and exit\n";
    EXPECT_EQ(flags.helpText(), expected);
}
