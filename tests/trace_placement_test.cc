/**
 * @file
 * Tests of the organ-pipe shuffle placement (paper §5.4) and the energy
 * accounting bridge.
 */
#include <set>

#include <gtest/gtest.h>

#include "core/energy.h"
#include "trace/placement.h"
#include "trace/synth.h"
#include "util/error.h"

namespace hc = hddtherm::core;
namespace hs = hddtherm::sim;
namespace htr = hddtherm::trace;
namespace hu = hddtherm::util;

namespace {

constexpr std::int64_t kSpace = 1 << 20; // 512 MB of sectors
constexpr std::int64_t kExtent = 1 << 12;

/// A trace hammering two far-apart hot extents.
htr::Trace
bimodalTrace()
{
    htr::Trace t("bimodal");
    double now = 0.0;
    for (int i = 0; i < 1000; ++i) {
        now += 0.001;
        const std::int64_t lba = (i % 2 == 0) ? 100 : kSpace - 5000;
        t.append({now, 0, lba, 8, false});
    }
    return t;
}

} // namespace

TEST(Shuffle, RemapIsABijectionOnExtents)
{
    const htr::ShuffleMap map(bimodalTrace(), kSpace, kExtent);
    std::set<std::int64_t> seen;
    for (std::int64_t e = 0; e < map.extents(); ++e) {
        const std::int64_t mapped = map.remap(e * kExtent);
        EXPECT_EQ(mapped % kExtent, 0);
        EXPECT_TRUE(seen.insert(mapped / kExtent).second)
            << "extent " << e << " collides";
    }
    EXPECT_EQ(std::int64_t(seen.size()), map.extents());
}

TEST(Shuffle, OffsetsWithinExtentPreserved)
{
    const htr::ShuffleMap map(bimodalTrace(), kSpace, kExtent);
    const std::int64_t base = map.remap(100 - 100 % kExtent);
    EXPECT_EQ(map.remap(100), base + 100 % kExtent);
}

TEST(Shuffle, HotExtentsLandAdjacentInTheMiddle)
{
    const htr::ShuffleMap map(bimodalTrace(), kSpace, kExtent);
    const std::int64_t a = map.remap(100) / kExtent;
    const std::int64_t b = map.remap(kSpace - 5000) / kExtent;
    // The two hottest extents end up neighbors near the band center.
    EXPECT_LE(std::abs(a - b), 1);
    EXPECT_NEAR(double(a), double(map.extents()) / 2.0, 2.0);
}

TEST(Shuffle, ShrinksSpatialSpreadOfHotTraffic)
{
    const auto trace = bimodalTrace();
    const htr::ShuffleMap map(trace, kSpace, kExtent);
    const auto shuffled = map.apply(trace);
    // Original alternates across nearly the whole band; shuffled stays
    // within a couple of extents.
    auto spread = [](const htr::Trace& t) {
        std::int64_t lo = 1ll << 62, hi = 0;
        for (const auto& r : t.records()) {
            lo = std::min(lo, r.lba);
            hi = std::max(hi, r.lba);
        }
        return hi - lo;
    };
    EXPECT_GT(spread(trace), kSpace / 2);
    EXPECT_LT(spread(shuffled), 4 * kExtent);
}

TEST(Shuffle, ApplyPreservesTimesSizesAndOps)
{
    const auto trace = bimodalTrace();
    const htr::ShuffleMap map(trace, kSpace, kExtent);
    const auto shuffled = map.apply(trace);
    ASSERT_EQ(shuffled.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i += 97) {
        EXPECT_DOUBLE_EQ(shuffled.records()[i].time,
                         trace.records()[i].time);
        EXPECT_EQ(shuffled.records()[i].sectors,
                  trace.records()[i].sectors);
        EXPECT_EQ(shuffled.records()[i].write, trace.records()[i].write);
    }
}

TEST(Shuffle, ConcentrationDiagnostic)
{
    const htr::ShuffleMap map(bimodalTrace(), kSpace, kExtent);
    // Two extents hold all accesses.
    EXPECT_NEAR(map.accessConcentration(1.0), 1.0, 1e-9);
    EXPECT_GT(map.accessConcentration(0.05), 0.99);
}

TEST(Shuffle, SkewedSyntheticTraceBenefits)
{
    htr::WorkloadSpec spec;
    spec.requests = 20000;
    spec.zipfTheta = 1.2;
    spec.regions = 256;
    spec.sequentialFraction = 0.1;
    spec.seed = 5;
    const auto trace =
        htr::SyntheticWorkload(spec).generate(kSpace);
    const htr::ShuffleMap map(trace, kSpace, kExtent);
    // With theta = 1.2 the hot fifth of extents should capture most
    // accesses.
    EXPECT_GT(map.accessConcentration(0.2), 0.6);
}

TEST(Shuffle, RejectsBadArguments)
{
    EXPECT_THROW({ htr::ShuffleMap m(bimodalTrace(), 0, kExtent); },
                 hu::ModelError);
    EXPECT_THROW({ htr::ShuffleMap m(bimodalTrace(), kSpace, 0); },
                 hu::ModelError);
    const htr::ShuffleMap map(bimodalTrace(), kSpace, kExtent);
    EXPECT_THROW(map.remap(-1), hu::ModelError);
    EXPECT_THROW(map.remap(kSpace), hu::ModelError);
}

TEST(Energy, BreakdownMatchesPowerModel)
{
    hddtherm::hdd::PlatterGeometry g;
    g.diameterInches = 2.6;
    g.platters = 1;
    hs::DiskActivity activity;
    activity.seekSec = 10.0;
    const auto e = hc::accountEnergy(g, 15098.0, activity, 100.0);
    // Windage: 0.91 W for 100 s; VCM: 3.9 W for the 10 s of seeking.
    EXPECT_NEAR(e.windageJ, 91.0, 0.5);
    EXPECT_NEAR(e.vcmJ, 39.0, 1e-9);
    EXPECT_GT(e.spindleJ, 500.0); // ~10 W motor loss
    EXPECT_NEAR(e.meanPowerW(100.0), e.totalJ() / 100.0, 1e-12);
}

TEST(Energy, ScalesWithSeekActivity)
{
    hddtherm::hdd::PlatterGeometry g;
    g.diameterInches = 2.1;
    hs::DiskActivity quiet, busy;
    quiet.seekSec = 1.0;
    busy.seekSec = 50.0;
    const auto a = hc::accountEnergy(g, 12000.0, quiet, 60.0);
    const auto b = hc::accountEnergy(g, 12000.0, busy, 60.0);
    EXPECT_DOUBLE_EQ(a.spindleJ, b.spindleJ);
    EXPECT_DOUBLE_EQ(a.windageJ, b.windageJ);
    EXPECT_GT(b.vcmJ, a.vcmJ);
}

TEST(Energy, RejectsInconsistentInterval)
{
    hddtherm::hdd::PlatterGeometry g;
    hs::DiskActivity activity;
    activity.seekSec = 10.0;
    EXPECT_THROW(hc::accountEnergy(g, 10000.0, activity, 5.0),
                 hu::ModelError);
    EXPECT_THROW(hc::accountEnergy(g, 10000.0, activity, -1.0),
                 hu::ModelError);
}
