/**
 * @file
 * RunBuilder property tests: the declarative harness is pure sugar over
 * the hand-wired trace → sim → thermal → dtm wiring.  Bit-identity is
 * required — same trace, same result fields — for the fault-free and
 * faulted paths; checkpointing must be a pure observer of a run; a
 * resumed harness run must complete bit-identically to the uninterrupted
 * one including the checkpoint bytes it writes after the resume point;
 * and fleet results must not depend on the executor thread count.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config_io.h"
#include "core/scenarios.h"
#include "dtm/cosim.h"
#include "fleet/fleet_sim.h"
#include "harness/run_builder.h"
#include "sim/storage_system.h"
#include "trace/synth.h"

namespace fs = std::filesystem;
namespace hc = hddtherm::core;
namespace hd = hddtherm::dtm;
namespace hf = hddtherm::fleet;
namespace hh = hddtherm::harness;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::trace;

namespace {

/// The binary identity every test stamps on its base experiment: the
/// paper's hot 2.6" single-platter drive under a fast arrival stream.
void
hotDriveTweak(hc::ExperimentSpec& e)
{
    e.system.disk.geometry.diameterInches = 2.6;
    e.system.disk.geometry.platters = 1;
    e.system.disk.tech = {500e3, 60e3};
    e.system.disk.rpmChangeSecPerKrpm = 0.02;
    e.system.disks = 1;
    e.workload.devices = 1;
    e.workload.arrivalRatePerSec = 600.0;
}

/// A gate-policy run hot enough that DTM actually actuates.
hh::RunSpec
gateSpec()
{
    hh::RunSpec spec;
    spec.scenario = "Search-Engine";
    spec.requests = 2000;
    spec.policy = "gate";
    spec.rpm = 24534.0;
    spec.maxSimulatedSec = 1200.0;
    return spec;
}

/// The wiring every binary repeated before the harness existed,
/// reproduced by hand for the given spec fields.
hd::CoSimConfig
handWiredConfig(const hh::RunSpec& spec)
{
    auto scenario = hc::figure4Scenario(spec.scenario, spec.requests);
    hc::ExperimentSpec base;
    base.system = scenario.system;
    base.workload = scenario.workload;
    hotDriveTweak(base);
    base.workload.requests = spec.requests;
    base.system.disk.rpm = spec.rpm;

    hd::CoSimConfig cfg;
    cfg.system = base.system;
    cfg.policy = hd::DtmPolicy::GateRequests;
    cfg.maxSimulatedSec = spec.maxSimulatedSec;
    if (!spec.faultsPath.empty())
        cfg.faults = hc::loadFaultSchedule(spec.faultsPath);
    return cfg;
}

std::vector<hs::IoRequest>
handWiredTrace(const hh::RunSpec& spec, const hd::CoSimConfig& cfg)
{
    auto scenario = hc::figure4Scenario(spec.scenario, spec.requests);
    hc::ExperimentSpec base;
    base.workload = scenario.workload;
    hotDriveTweak(base);
    base.workload.requests = spec.requests;
    const ht::SyntheticWorkload gen(base.workload);
    const hs::StorageSystem probe(cfg.system);
    return gen.generate(probe.logicalSectors()).toRequests();
}

/// Strict equality of every deterministic co-sim result field.
void
expectSameResult(const hd::CoSimResult& a, const hd::CoSimResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.meanTempC, b.meanTempC);
    EXPECT_EQ(a.envelopeExceededSec, b.envelopeExceededSec);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.meanVcmDuty, b.meanVcmDuty);
    EXPECT_EQ(a.invalidReadings, b.invalidReadings);
    EXPECT_EQ(a.failSafeActivations, b.failSafeActivations);
    EXPECT_EQ(a.failSafeSec, b.failSafeSec);
}

void
expectSameFleetResult(const hf::FleetResult& a, const hf::FleetResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.meanLatencyMs, b.meanLatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.maxDriveTempC, b.maxDriveTempC);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.epochs, b.epochs);
    ASSERT_EQ(a.chassis.size(), b.chassis.size());
    for (std::size_t i = 0; i < a.chassis.size(); ++i) {
        EXPECT_EQ(a.chassis[i].peakDriveTempC, b.chassis[i].peakDriveTempC);
        EXPECT_EQ(a.chassis[i].gateEvents, b.chassis[i].gateEvents);
    }
}

fs::path
scratchDir(const std::string& name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
readFileBytes(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/// Checkpoint files in @p dir, sorted by index.
std::vector<fs::path>
checkpointFiles(const fs::path& dir)
{
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir))
        files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

/// A two-event fault schedule file (airflow degrade + ambient step).
std::string
writeFaultFile(const std::string& name)
{
    const std::string path = (fs::temp_directory_path() / name).string();
    std::ofstream out(path);
    out << "[schedule]\n"
           "noise_seed = 2005\n"
           "\n"
           "[fault.0]\n"
           "at = 1\n"
           "kind = airflow_degrade\n"
           "factor = 0.35\n"
           "duration = 600\n"
           "\n"
           "[fault.1]\n"
           "at = 2\n"
           "kind = ambient_step\n"
           "delta_c = 3\n";
    return path;
}

} // namespace

TEST(RunBuilder, MatchesHandWiringBitForBit)
{
    const hh::RunSpec spec = gateSpec();

    hh::RunBuilder builder(spec, hotDriveTweak);
    const auto harness_trace = builder.makeTrace();
    const auto harness_result = builder.runCoSim(harness_trace);

    const hd::CoSimConfig cfg = handWiredConfig(spec);
    const auto trace = handWiredTrace(spec, cfg);
    ASSERT_EQ(harness_trace.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(harness_trace[i].arrival, trace[i].arrival);
        EXPECT_EQ(harness_trace[i].lba, trace[i].lba);
        EXPECT_EQ(harness_trace[i].sectors, trace[i].sectors);
    }
    const auto result = hd::CoSimulation(cfg).run(trace);

    expectSameResult(harness_result, result);
    EXPECT_GT(harness_result.gateEvents, 0u)
        << "hot drive under gate policy should actually throttle";
}

TEST(RunBuilder, FaultedRunMatchesHandWiring)
{
    hh::RunSpec spec = gateSpec();
    spec.faultsPath =
        writeFaultFile("hddtherm-harness-builder-faults.ini");

    hh::RunBuilder builder(spec, hotDriveTweak);
    const auto harness_result = builder.runCoSim(builder.makeTrace());

    const hd::CoSimConfig cfg = handWiredConfig(spec);
    const auto result = hd::CoSimulation(cfg).run(handWiredTrace(spec, cfg));

    expectSameResult(harness_result, result);
    // And the fault-free baseline really strips the schedule.
    const auto baseline = builder.runBaseline(builder.makeTrace());
    hh::RunSpec clean_spec = spec;
    clean_spec.faultsPath.clear();
    hh::RunBuilder clean(clean_spec, hotDriveTweak);
    expectSameResult(baseline, clean.runCoSim(clean.makeTrace()));
    std::remove(spec.faultsPath.c_str());
}

TEST(RunBuilder, CheckpointingIsAPureObserver)
{
    const hh::RunSpec plain_spec = gateSpec();
    hh::RunBuilder plain(plain_spec, hotDriveTweak);
    const auto plain_result = plain.runCoSim(plain.makeTrace());

    const auto dir = scratchDir("hddtherm-harness-ckpt-observer");
    hh::RunSpec ckpt_spec = gateSpec();
    ckpt_spec.checkpoint.everySec = 1.0;
    ckpt_spec.checkpoint.directory = dir.string();
    hh::RunBuilder ckpt(ckpt_spec, hotDriveTweak);
    const auto ckpt_result = ckpt.runCoSim(ckpt.makeTrace());

    expectSameResult(plain_result, ckpt_result);
    EXPECT_FALSE(checkpointFiles(dir).empty());
    fs::remove_all(dir);
}

TEST(RunBuilder, ResumedRunIsBitIdenticalIncludingCheckpointBytes)
{
    const auto dir_a = scratchDir("hddtherm-harness-resume-a");
    hh::RunSpec spec_a = gateSpec();
    spec_a.checkpoint.everySec = 1.0;
    spec_a.checkpoint.directory = dir_a.string();
    hh::RunBuilder full(spec_a, hotDriveTweak);
    const auto full_result = full.runCoSim(full.makeTrace());
    const auto files_a = checkpointFiles(dir_a);
    ASSERT_GE(files_a.size(), 2u)
        << "cadence produced too few checkpoints for a mid-run resume";

    // Resume from the earliest retained checkpoint into a fresh
    // directory, through the same declarative API an entry point uses.
    const auto dir_b = scratchDir("hddtherm-harness-resume-b");
    hh::RunSpec spec_b = gateSpec();
    spec_b.checkpoint.everySec = 1.0;
    spec_b.checkpoint.directory = dir_b.string();
    spec_b.checkpoint.resumeFrom = files_a.front().string();
    hh::RunBuilder resumed(spec_b, hotDriveTweak);
    EXPECT_EQ(resumed.resumePath(), files_a.front().string());
    const auto resumed_result = resumed.runCoSim(resumed.makeTrace());

    expectSameResult(full_result, resumed_result);

    // Checkpoints written after the resume point must be byte-identical
    // to the uninterrupted run's files of the same index.
    const auto files_b = checkpointFiles(dir_b);
    ASSERT_GE(files_b.size(), 1u);
    for (const auto& file_b : files_b) {
        const fs::path same = dir_a / file_b.filename();
        ASSERT_TRUE(fs::exists(same))
            << "resumed run wrote " << file_b.filename()
            << " which the full run never produced";
        EXPECT_EQ(readFileBytes(file_b), readFileBytes(same))
            << file_b.filename() << " differs from the full run's copy";
    }

    // Resuming via a directory resolves to the newest checkpoint in it.
    hh::RunSpec spec_c = gateSpec();
    spec_c.checkpoint.resumeFrom = dir_a.string();
    hh::RunBuilder latest(spec_c, hotDriveTweak);
    EXPECT_EQ(latest.resumePath(), files_a.back().string());

    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
}

TEST(RunBuilder, FleetResultIsThreadCountInvariant)
{
    hh::RunSpec spec;
    spec.requests = 200;
    spec.policy = "gate";
    spec.rpm = 24534.0;
    spec.racks = 1;
    spec.chassisPerRack = 2;
    spec.baysPerChassis = 2;
    spec.inletC = 27.0;
    spec.seed = 7;
    spec.epochSec = 0.25;
    const auto fleetTweak = [](hc::ExperimentSpec& e) {
        e.system.disk.geometry.diameterInches = 2.6;
        e.system.disk.geometry.platters = 1;
        e.system.disk.tech = {500e3, 60e3};
        e.workload.arrivalRatePerSec = 100.0;
    };

    hh::RunSpec one = spec;
    one.threads = 1;
    hh::RunBuilder builder_one(one, fleetTweak);
    const auto result_one = builder_one.runFleet();

    hh::RunSpec two = spec;
    two.threads = 2;
    hh::RunBuilder builder_two(two, fleetTweak);
    const auto result_two = builder_two.runFleet();

    expectSameFleetResult(result_one, result_two);
    EXPECT_GT(result_one.metrics.count(), 0u);
}
