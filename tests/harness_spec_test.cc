/**
 * @file
 * RunSpec contract tests: the INI → CLI precedence chain, round-tripping
 * through formatRunSpec, loud rejection of unknown sections/keys (both
 * harness sections and the [disk]/[array]/[workload] experiment
 * overlay), the shared checkpoint option block, and the --spec pre-scan.
 */
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/flags.h"
#include "harness/run_spec.h"
#include "util/error.h"

namespace hc = hddtherm::core;
namespace hd = hddtherm::dtm;
namespace hh = hddtherm::harness;
namespace hu = hddtherm::util;

namespace {

void
applyText(const std::string& text, hh::RunSpec& spec)
{
    hh::applyRunDocument(hc::ini::parseDocument(text), spec);
}

/// Write @p text to a temp file and return its path.
std::string
tempSpecFile(const std::string& name, const std::string& text)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / name).string();
    std::ofstream out(path);
    out << text;
    return path;
}

} // namespace

TEST(RunSpec, IniOverlaysDefaultsAndAbsentKeysKeepThem)
{
    hh::RunSpec spec;
    spec.scenario = "Search-Engine";
    spec.requests = 20000;
    spec.policy = "gate";
    spec.rpm = 24534.0;
    applyText(R"(
[run]
requests = 500

[dtm]
policy = govern
rpm_ladder = 15020, 18000, 24534
)",
              spec);
    EXPECT_EQ(spec.requests, 500u);
    EXPECT_EQ(spec.policy, "govern");
    EXPECT_EQ(spec.rpmLadder,
              (std::vector<double>{15020.0, 18000.0, 24534.0}));
    // Keys the file does not mention keep the programmatic defaults.
    EXPECT_EQ(spec.scenario, "Search-Engine");
    EXPECT_DOUBLE_EQ(spec.rpm, 24534.0);
}

TEST(RunSpec, CliOverridesIni)
{
    hh::RunSpec spec;
    spec.policy = "gate";
    applyText("[dtm]\npolicy = govern\nrpm = 11111\n", spec);
    ASSERT_EQ(spec.policy, "govern");

    hh::FlagParser flags("prog");
    spec.addRunFlags(flags);
    spec.addDtmFlags(flags);
    EXPECT_TRUE(flags.parse({"--policy", "gate-rpm", "--requests", "9"}));
    EXPECT_EQ(spec.policy, "gate-rpm");
    EXPECT_EQ(spec.requests, 9u);
    // A CLI flag not given leaves the INI value in place.
    EXPECT_DOUBLE_EQ(spec.rpm, 11111.0);
}

TEST(RunSpec, SpecArgsLoadInOrderAndBeforeOtherFlags)
{
    hh::RunSpec spec;
    const auto path = tempSpecFile("hddtherm-spec-prescan.ini",
                                   "[dtm]\npolicy = govern\n"
                                   "[run]\nrequests = 777\n");
    const std::string arg = "--spec=" + path;
    // --spec may sit anywhere on the command line; the pre-scan loads it
    // first so every other flag wins.
    std::vector<std::string> argv_strings = {"prog", "--policy", "gate",
                                             arg};
    std::vector<char*> argv;
    for (auto& s : argv_strings)
        argv.push_back(s.data());
    hh::applySpecArgs(int(argv.size()), argv.data(), spec);
    EXPECT_EQ(spec.policy, "govern");
    EXPECT_EQ(spec.requests, 777u);
    EXPECT_EQ(spec.specPath, path);

    hh::FlagParser flags("prog");
    spec.addRunFlags(flags);
    spec.addDtmFlags(flags);
    EXPECT_TRUE(flags.parse(int(argv.size()), argv.data()));
    EXPECT_EQ(spec.policy, "gate"); // CLI wins over the file
    EXPECT_EQ(spec.requests, 777u); // file value survives: no CLI override
    std::remove(path.c_str());
}

TEST(RunSpec, FormatRoundTrips)
{
    hh::RunSpec spec;
    spec.scenario = "OLTP";
    spec.requests = 1234;
    spec.policy = "gate-rpm";
    spec.rpm = 24534.0;
    spec.lowRpm = 9534.0;
    spec.rpmLadder = {15020.0, 24534.0};
    spec.ambientC = 31.5;
    spec.maxSimulatedSec = 600.0;
    spec.warmupFraction = 0.25;
    spec.racks = 3;
    spec.chassisPerRack = 2;
    spec.baysPerChassis = 5;
    spec.inletC = 27.0;
    spec.seed = 99;
    spec.epochSec = 0.25;
    spec.threads = 4;
    spec.checkpoint.everySec = 30.0;
    spec.checkpoint.directory = "ck";
    spec.checkpoint.delta = true;
    spec.checkpoint.compress = true;
    spec.csvDir = "out";
    spec.overlay["workload"]["read_fraction"] = "0.9";

    hh::RunSpec back;
    applyText(hh::formatRunSpec(spec), back);
    EXPECT_EQ(back.scenario, spec.scenario);
    EXPECT_EQ(back.requests, spec.requests);
    EXPECT_EQ(back.policy, spec.policy);
    EXPECT_DOUBLE_EQ(back.rpm, spec.rpm);
    EXPECT_DOUBLE_EQ(back.lowRpm, spec.lowRpm);
    EXPECT_EQ(back.rpmLadder, spec.rpmLadder);
    EXPECT_DOUBLE_EQ(back.ambientC, spec.ambientC);
    EXPECT_DOUBLE_EQ(back.maxSimulatedSec, spec.maxSimulatedSec);
    EXPECT_DOUBLE_EQ(back.warmupFraction, spec.warmupFraction);
    EXPECT_EQ(back.racks, spec.racks);
    EXPECT_EQ(back.chassisPerRack, spec.chassisPerRack);
    EXPECT_EQ(back.baysPerChassis, spec.baysPerChassis);
    EXPECT_DOUBLE_EQ(back.inletC, spec.inletC);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_DOUBLE_EQ(back.epochSec, spec.epochSec);
    EXPECT_EQ(back.threads, spec.threads);
    EXPECT_DOUBLE_EQ(back.checkpoint.everySec, spec.checkpoint.everySec);
    EXPECT_EQ(back.checkpoint.directory, spec.checkpoint.directory);
    EXPECT_TRUE(back.checkpoint.delta);
    EXPECT_TRUE(back.checkpoint.compress);
    EXPECT_EQ(back.csvDir, spec.csvDir);
    EXPECT_EQ(back.overlay, spec.overlay);
}

TEST(RunSpec, RejectsUnknownSectionsAndKeys)
{
    hh::RunSpec spec;
    EXPECT_THROW(applyText("[bogus]\nx = 1\n", spec), hu::ModelError);
    EXPECT_THROW(applyText("[dtm]\nplocy = gate\n", spec),
                 hu::ModelError);
    EXPECT_THROW(applyText("[checkpoint]\nevery = 5\n", spec),
                 hu::ModelError);
    // Experiment-overlay typos must fail at load time too, not when
    // RunBuilder finally applies the overlay.
    EXPECT_THROW(applyText("[workload]\nrequets = 100\n", spec),
                 hu::ModelError);
    EXPECT_THROW(applyText("[disk]\nrmp = 15000\n", spec),
                 hu::ModelError);
}

TEST(RunSpec, RejectsUnknownPolicyWordAtLoadTime)
{
    hh::RunSpec spec;
    EXPECT_THROW(applyText("[dtm]\npolicy = freeze\n", spec),
                 hu::ModelError);
    EXPECT_EQ(hh::parseDtmPolicy("gate-rpm"),
              hd::DtmPolicy::GateAndLowRpm);
    EXPECT_STREQ(hh::dtmPolicyWord(hd::DtmPolicy::GovernSpeed), "govern");
}

TEST(CheckpointOptions, PolicyMapsAllFields)
{
    hh::CheckpointOptions opts;
    EXPECT_FALSE(opts.enabled());
    opts.everySec = 12.5;
    opts.everyEpochs = 4;
    opts.directory = "somewhere";
    opts.delta = true;
    opts.compress = true;
    EXPECT_TRUE(opts.enabled());
    const auto policy = opts.policy();
    EXPECT_DOUBLE_EQ(policy.everySec, 12.5);
    EXPECT_EQ(policy.everyEpochs, 4u);
    EXPECT_EQ(policy.directory, "somewhere");
    EXPECT_TRUE(policy.delta);
    EXPECT_TRUE(policy.compress);
}

TEST(CheckpointOptions, ResolveResumeHandlesFileDirAndEmpty)
{
    hh::CheckpointOptions opts;
    EXPECT_EQ(opts.resolveResume(), "");
    const auto dir = std::filesystem::temp_directory_path() /
                     "hddtherm-harness-empty-resume";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    opts.resumeFrom = dir.string();
    EXPECT_THROW(opts.resolveResume(), hu::ModelError);
    std::filesystem::remove_all(dir);
}
