/**
 * @file
 * Tests of the roadmap planner (the paper's §4 methodology automated).
 */
#include <gtest/gtest.h>

#include "roadmap/planner.h"
#include "util/error.h"

namespace hr = hddtherm::roadmap;
namespace hu = hddtherm::util;

namespace {

const std::vector<hr::PlanStep>&
defaultPlan()
{
    static const std::vector<hr::PlanStep> steps = [] {
        static const hr::RoadmapEngine engine;
        return hr::RoadmapPlanner(engine).plan();
    }();
    return steps;
}

} // namespace

TEST(Planner, CoversEveryYear)
{
    const auto& plan = defaultPlan();
    ASSERT_EQ(plan.size(), 11u);
    EXPECT_EQ(plan.front().year, 2002);
    EXPECT_EQ(plan.back().year, 2012);
}

TEST(Planner, MeetsTargetThroughTwoThousandFive)
{
    // Paper §4.1: "the IDR growth of 40% can be sustained till the year
    // 2006" (our 1.6" ceiling lands the fall-off at 2006 itself).
    for (const auto& step : defaultPlan()) {
        if (step.year <= 2005) {
            EXPECT_TRUE(step.onTarget) << step.year;
        }
        if (step.year >= 2007) {
            EXPECT_FALSE(step.onTarget) << step.year;
        }
    }
}

TEST(Planner, ReproducesThePaper2005Transition)
{
    // Paper §4.1 worked example: in 2005 the 2.1" size misses the target;
    // shrink to 1.6" and add a platter to push the capacity back up
    // (the paper lands at 70.97 GB with 2 platters).
    const auto& plan = defaultPlan();
    const auto& y2005 = plan[3];
    ASSERT_EQ(y2005.year, 2005);
    EXPECT_DOUBLE_EQ(y2005.diameterInches, 1.6);
    EXPECT_EQ(y2005.platters, 2);
    EXPECT_EQ(y2005.action, hr::PlanAction::AddPlatters);
    EXPECT_NEAR(y2005.capacityGB, 70.97, 8.0);
}

TEST(Planner, PlatterSizeNeverGrowsBack)
{
    double prev = 1e9;
    for (const auto& step : defaultPlan()) {
        EXPECT_LE(step.diameterInches, prev) << step.year;
        prev = step.diameterInches;
    }
}

TEST(Planner, OnTargetYearsRunAtExactlyTheTarget)
{
    for (const auto& step : defaultPlan()) {
        if (step.onTarget) {
            EXPECT_NEAR(step.idr, step.targetIdr, 1e-6) << step.year;
            // Staying on target never needs to exceed the envelope.
            EXPECT_LE(step.temperatureC,
                      hddtherm::thermal::kThermalEnvelopeC + 0.05)
                << step.year;
        }
    }
}

TEST(Planner, OffTargetYearsPinTheEnvelope)
{
    for (const auto& step : defaultPlan()) {
        if (!step.onTarget) {
            EXPECT_NEAR(step.temperatureC,
                        hddtherm::thermal::kThermalEnvelopeC, 0.1)
                << step.year;
            EXPECT_LT(step.idr, step.targetIdr) << step.year;
        }
    }
}

TEST(Planner, CapacityRecoversAcrossTransitions)
{
    // The add-platters rule keeps capacity from collapsing at shrink
    // points: each year's capacity stays above 60% of the previous
    // year's (and grows overall).
    const auto& plan = defaultPlan();
    for (std::size_t i = 1; i < plan.size(); ++i) {
        EXPECT_GT(plan[i].capacityGB, 0.6 * plan[i - 1].capacityGB)
            << plan[i].year;
    }
    EXPECT_GT(plan.back().capacityGB, plan.front().capacityGB * 10.0);
}

TEST(Planner, ActionNamesAreStable)
{
    EXPECT_STREQ(hr::planActionName(hr::PlanAction::Hold), "hold");
    EXPECT_STREQ(hr::planActionName(hr::PlanAction::RaiseRpm),
                 "raise-rpm");
    EXPECT_STREQ(hr::planActionName(hr::PlanAction::ShrinkPlatter),
                 "shrink-platter");
    EXPECT_STREQ(hr::planActionName(hr::PlanAction::AddPlatters),
                 "shrink+add-platters");
    EXPECT_STREQ(hr::planActionName(hr::PlanAction::OffTarget),
                 "off-target");
}

TEST(Planner, BetterCoolingDelaysTheFirstOffTargetYear)
{
    hr::RoadmapOptions cool;
    cool.ambientC -= 10.0;
    const hr::RoadmapEngine cool_engine(cool);
    const auto cool_plan = hr::RoadmapPlanner(cool_engine).plan();

    auto first_off = [](const std::vector<hr::PlanStep>& plan) {
        for (const auto& step : plan) {
            if (!step.onTarget)
                return step.year;
        }
        return 9999;
    };
    EXPECT_GT(first_off(cool_plan), first_off(defaultPlan()));
}

TEST(Planner, SingleConfigurationDegeneratesToFigure2Curve)
{
    // With one size and one count the planner can only ride the curve.
    static const hr::RoadmapEngine engine;
    hr::PlannerOptions opts;
    opts.diameters = {2.6};
    opts.counts = {1};
    const auto plan = hr::RoadmapPlanner(engine, opts).plan();
    for (const auto& step : plan) {
        EXPECT_DOUBLE_EQ(step.diameterInches, 2.6);
        EXPECT_EQ(step.platters, 1);
    }
    // 2.6" alone is already off target at the start (Table 3: 45.24 C).
    EXPECT_FALSE(plan.front().onTarget);
}

TEST(Planner, RejectsBadOptions)
{
    static const hr::RoadmapEngine engine;
    hr::PlannerOptions opts;
    opts.diameters = {1.6, 2.6}; // wrong order
    EXPECT_THROW({ hr::RoadmapPlanner p(engine, opts); }, hu::ModelError);
    opts = hr::PlannerOptions{};
    opts.counts = {4, 1}; // wrong order
    EXPECT_THROW({ hr::RoadmapPlanner p(engine, opts); }, hu::ModelError);
    opts = hr::PlannerOptions{};
    opts.diameters.clear();
    EXPECT_THROW({ hr::RoadmapPlanner p(engine, opts); }, hu::ModelError);
}
