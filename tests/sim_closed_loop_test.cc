/**
 * @file
 * Tests of the closed-loop (think-time) workload driver.
 */
#include <gtest/gtest.h>

#include "engine/trace.h"
#include "sim/closed_loop.h"
#include "util/error.h"
#include "util/random.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::SystemConfig
oneDisk(double rpm = 10000.0)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.tech = {400e3, 30e3};
    cfg.disk.rpm = rpm;
    return cfg;
}

hs::ClosedLoopDriver::RequestFactory
randomReads(std::int64_t space)
{
    auto rng = std::make_shared<hu::Rng>(17);
    return [rng, space](int, std::uint64_t) {
        hs::IoRequest r;
        r.lba = rng->uniformInt(0, space - 64);
        r.sectors = 8;
        return r;
    };
}

} // namespace

TEST(ClosedLoop, CompletesExactlyTheRequestedCount)
{
    hs::StorageSystem sys(oneDisk());
    hs::ClosedLoopDriver driver(sys, 4, 0.002,
                                randomReads(sys.logicalSectors()));
    const auto metrics = driver.run(300);
    EXPECT_EQ(metrics.count(), 300u);
    EXPECT_EQ(driver.completed(), 300u);
    EXPECT_EQ(sys.inflight(), 0u);
}

TEST(ClosedLoop, InFlightNeverExceedsClientCount)
{
    hs::StorageSystem sys(oneDisk());
    const int clients = 3;
    std::size_t max_inflight = 0;
    sys.disk(0); // ensure construction
    hs::ClosedLoopDriver driver(
        sys, clients, 0.0,
        [&sys, &max_inflight, space = sys.logicalSectors()](
            int, std::uint64_t seq) {
            max_inflight = std::max(max_inflight, sys.inflight() + 1);
            hs::IoRequest r;
            r.lba = std::int64_t(seq) * 9973 * 64 % (space - 64);
            r.sectors = 8;
            return r;
        });
    driver.run(200);
    EXPECT_LE(max_inflight, std::size_t(clients));
}

TEST(ClosedLoop, ThroughputSelfLimitsUnderGating)
{
    // The defining closed-loop property: gating the array pauses the
    // clients instead of growing an unbounded queue.  Gate the disk for
    // a fixed window mid-run; the run still finishes, response times
    // stay bounded by the gate window (not by queue depth).
    hs::StorageSystem sys(oneDisk());
    hs::ClosedLoopDriver driver(sys, 2, 0.001,
                                randomReads(sys.logicalSectors()));
    sys.events().schedule(0.05, [&sys] { sys.gateAll(true); });
    sys.events().schedule(0.25, [&sys] { sys.gateAll(false); });
    const auto metrics = driver.run(200);
    EXPECT_EQ(metrics.count(), 200u);
    // At most ~2 requests (one per client) waited out the 200 ms gate.
    EXPECT_LT(metrics.stats().max(), 260.0);
    EXPECT_LT(metrics.meanMs(), 30.0);
}

TEST(ClosedLoop, MoreClientsMoreThroughputUntilSaturation)
{
    auto run_with = [](int clients) {
        hs::StorageSystem sys(oneDisk());
        hs::ClosedLoopDriver driver(
            sys, clients, 0.0, randomReads(sys.logicalSectors()));
        driver.run(400);
        return 400.0 / sys.events().now(); // requests per second
    };
    const double x1 = run_with(1);
    const double x4 = run_with(4);
    // With zero think time a single disk is already busy at 1 client;
    // extra clients deepen the queue but SSTF-free FCFS gains little —
    // throughput must not regress and not explode.
    EXPECT_GE(x4, x1 * 0.95);
    EXPECT_LT(x4, x1 * 3.0);
}

TEST(ClosedLoop, ThinkTimeThrottlesThroughput)
{
    auto run_with = [](double think) {
        hs::StorageSystem sys(oneDisk());
        hs::ClosedLoopDriver driver(
            sys, 2, think, randomReads(sys.logicalSectors()));
        driver.run(200);
        return 200.0 / sys.events().now();
    };
    EXPECT_GT(run_with(0.0), 1.5 * run_with(0.05));
}

TEST(ClosedLoop, RejectsBadConfig)
{
    hs::StorageSystem sys(oneDisk());
    auto factory = randomReads(sys.logicalSectors());
    EXPECT_THROW({ hs::ClosedLoopDriver d(sys, 0, 0.0, factory); },
                 hu::ModelError);
    EXPECT_THROW({ hs::ClosedLoopDriver d(sys, 1, -1.0, factory); },
                 hu::ModelError);
    EXPECT_THROW({ hs::ClosedLoopDriver d(sys, 1, 0.0, nullptr); },
                 hu::ModelError);
    hs::ClosedLoopDriver driver(sys, 1, 0.0, factory);
    EXPECT_THROW(driver.run(0), hu::ModelError);
}

TEST(ClosedLoop, ThinkTimesRunInTheClientClockDomain)
{
    // The driver schedules think-time wakeups under a "client" domain of
    // the system's kernel, while request dispatch stays in "storage" —
    // a trace of one run shows both, attributably.
    hs::StorageSystem sys(oneDisk());
    hddtherm::engine::RingBufferTraceSink sink(1 << 14);
    sys.events().setTraceSink(&sink);
    hs::ClosedLoopDriver driver(sys, 2, 0.003,
                                randomReads(sys.logicalSectors()));
    driver.run(100);
    sys.events().setTraceSink(nullptr);

    std::uint64_t client_fires = 0;
    std::uint64_t storage_fires = 0;
    for (const auto& e : sink.events()) {
        if (e.kind != hddtherm::engine::TraceKind::Fired)
            continue;
        if (e.domainName == "client")
            ++client_fires;
        else if (e.domainName == "storage")
            ++storage_fires;
    }
    EXPECT_GT(client_fires, 0u);
    EXPECT_GT(storage_fires, 0u);
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(ClosedLoop, TracingNeverPerturbsTheRun)
{
    // Two identical closed-loop runs, one traced, one not: the response
    // metrics must match bit for bit (trace sinks are pure observers).
    auto run_once = [](hddtherm::engine::TraceSink* sink) {
        hs::StorageSystem sys(oneDisk());
        sys.events().setTraceSink(sink);
        hs::ClosedLoopDriver driver(sys, 3, 0.002,
                                    randomReads(sys.logicalSectors()));
        return driver.run(250);
    };
    hddtherm::engine::RingBufferTraceSink sink(64);
    const auto plain = run_once(nullptr);
    const auto traced = run_once(&sink);
    EXPECT_EQ(plain.count(), traced.count());
    EXPECT_EQ(plain.meanMs(), traced.meanMs());
    EXPECT_EQ(plain.stats().variance(), traced.stats().variance());
    EXPECT_EQ(plain.histogram().bins(), traced.histogram().bins());
    EXPECT_GT(sink.dropped(), 0u); // the tiny ring wrapped, harmlessly
}
