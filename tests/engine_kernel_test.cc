/**
 * @file
 * Unit tests for the SimKernel: (time, priority, sequence) ordering,
 * clock domains, periodic tasks, and the event-trace hook interface.
 */
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/kernel.h"
#include "engine/trace.h"
#include "util/error.h"

namespace he = hddtherm::engine;
namespace hu = hddtherm::util;

TEST(SimKernel, TimeTiesBreakByInsertionSequence)
{
    // The kernel's determinism contract: simultaneous events of equal
    // priority fire strictly in the order they were scheduled.
    he::SimKernel k;
    std::vector<int> order;
    for (int i = 0; i < 32; ++i)
        k.schedule(1.0, [&order, i] { order.push_back(i); });
    k.runAll();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(SimKernel, PriorityOutranksSequenceAtEqualTimes)
{
    he::SimKernel k;
    const auto late = k.registerDomain("late", 5);
    const auto early = k.registerDomain("early", -5);
    std::vector<std::string> order;
    k.schedule(1.0, late, [&] { order.push_back("late"); });
    k.schedule(1.0, [&] { order.push_back("default"); });
    k.schedule(1.0, early, [&] { order.push_back("early"); });
    k.runAll();
    EXPECT_EQ(order,
              (std::vector<std::string>{"early", "default", "late"}));
}

TEST(SimKernel, TimeAlwaysOutranksPriority)
{
    he::SimKernel k;
    const auto urgent = k.registerDomain("urgent", -100);
    std::vector<int> order;
    k.schedule(2.0, urgent, [&] { order.push_back(2); });
    k.schedule(1.0, [&] { order.push_back(1); });
    k.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimKernel, DomainRegistrationIsIdempotentByName)
{
    he::SimKernel k;
    const auto a = k.registerDomain("storage");
    const auto b = k.registerDomain("storage");
    EXPECT_EQ(a, b);
    EXPECT_EQ(k.domainName(a), "storage");
    EXPECT_EQ(k.domainCount(), 2); // default + storage
    // Conflicting priority on an existing name is a configuration error.
    EXPECT_THROW(k.registerDomain("storage", 3), hu::ModelError);
    EXPECT_THROW(k.registerDomain(""), hu::ModelError);
}

TEST(SimKernel, DefaultDomainAlwaysExists)
{
    he::SimKernel k;
    EXPECT_EQ(k.domainCount(), 1);
    EXPECT_EQ(k.domainName(he::SimKernel::kDefaultDomain), "default");
    EXPECT_EQ(k.domainPriority(he::SimKernel::kDefaultDomain), 0);
    EXPECT_THROW(k.domainName(7), hu::ModelError);
}

TEST(SimKernel, SchedulingToUnknownDomainThrows)
{
    he::SimKernel k;
    EXPECT_THROW(k.schedule(1.0, 3, [] {}), hu::ModelError);
}

TEST(SimKernel, PeriodicTaskFiresUntilCallbackStops)
{
    he::SimKernel k;
    const auto ctrl = k.registerDomain("control");
    std::vector<double> fired_at;
    k.schedulePeriodic(ctrl, 0.5, [&] {
        fired_at.push_back(k.now());
        return fired_at.size() < 4;
    });
    k.runAll();
    EXPECT_EQ(fired_at, (std::vector<double>{0.5, 1.0, 1.5, 2.0}));
    EXPECT_TRUE(k.empty());
}

TEST(SimKernel, PeriodicRescheduleComesAfterCallbackEvents)
{
    // Events a periodic callback schedules at the next tick's timestamp
    // must fire before that tick: the reschedule happens after the
    // callback returns, so its sequence number is larger.
    he::SimKernel k;
    const auto ctrl = k.registerDomain("control");
    std::vector<std::string> order;
    int ticks = 0;
    k.schedulePeriodic(ctrl, 1.0, [&] {
        order.push_back("tick@" + std::to_string(int(k.now())));
        if (++ticks == 1)
            k.schedule(2.0, [&] { order.push_back("event@2"); });
        return ticks < 2;
    });
    k.runAll();
    EXPECT_EQ(order, (std::vector<std::string>{"tick@1", "event@2",
                                               "tick@2"}));
}

TEST(SimKernel, PeriodicCallbackMayArmFurtherPeriodicTasks)
{
    // Regression guard: arming a periodic task from inside another's
    // callback grows the kernel's task table mid-fire.
    he::SimKernel k;
    const auto ctrl = k.registerDomain("control");
    int outer = 0;
    int inner = 0;
    k.schedulePeriodic(ctrl, 1.0, [&] {
        if (++outer == 1) {
            k.schedulePeriodic(ctrl, 0.25, [&] {
                ++inner;
                return inner < 3;
            });
        }
        return outer < 2;
    });
    k.runAll();
    EXPECT_EQ(outer, 2);
    EXPECT_EQ(inner, 3);
}

TEST(SimKernel, PeriodicCallbackSurvivesTaskTableReallocation)
{
    // Regression guard (use-after-free, caught under ASan): the outer
    // callback captures a single pointer, so std::function stores the
    // closure inline.  Arming a new periodic task mid-fire reallocates
    // the kernel's task table; the executing closure must survive that
    // and still be able to touch its captures afterwards.
    he::SimKernel k;
    const auto ctrl = k.registerDomain("control");
    struct State
    {
        he::SimKernel* kernel;
        he::DomainId domain;
        int outer = 0;
        int inner = 0;
    } s{&k, ctrl};
    k.schedulePeriodic(ctrl, 1.0, [p = &s] {
        if (++p->outer == 1) {
            p->kernel->schedulePeriodic(p->domain, 0.25,
                                        [p] { return ++p->inner < 3; });
        }
        return p->outer < 2;
    });
    k.runAll();
    EXPECT_EQ(s.outer, 2);
    EXPECT_EQ(s.inner, 3);
}

TEST(SimKernel, RingBufferClearedEventsAreNotCountedAsDropped)
{
    he::RingBufferTraceSink sink(4);
    he::TraceEvent ev;
    for (int i = 0; i < 3; ++i)
        sink.onEvent(ev);
    sink.clear();
    EXPECT_EQ(sink.events().size(), 0u);
    EXPECT_EQ(sink.observed(), 3u);
    EXPECT_EQ(sink.dropped(), 0u); // cleared, not dropped

    // Counters keep running after clear(); only overwrites drop.
    for (int i = 0; i < 6; ++i)
        sink.onEvent(ev);
    EXPECT_EQ(sink.events().size(), 4u);
    EXPECT_EQ(sink.observed(), 9u);
    EXPECT_EQ(sink.dropped(), 2u);
}

TEST(SimKernel, RingBufferSinkSeesSchedulesAndFires)
{
    he::SimKernel k;
    const auto storage = k.registerDomain("storage");
    he::RingBufferTraceSink sink(64);
    k.setTraceSink(&sink);
    k.schedule(1.0, storage, [] {});
    k.schedule(2.0, [] {});
    k.runAll();
    k.setTraceSink(nullptr);

    const auto events = sink.events();
    ASSERT_EQ(events.size(), 4u); // 2 schedules + 2 fires
    EXPECT_EQ(sink.observed(), 4u);
    EXPECT_EQ(sink.dropped(), 0u);

    EXPECT_EQ(events[0].kind, he::TraceKind::Scheduled);
    EXPECT_DOUBLE_EQ(events[0].time, 0.0); // emitted at schedule time
    EXPECT_DOUBLE_EQ(events[0].when, 1.0); // fires later
    EXPECT_EQ(events[0].domain, storage);
    EXPECT_EQ(events[0].domainName, "storage");

    EXPECT_EQ(events[2].kind, he::TraceKind::Fired);
    EXPECT_DOUBLE_EQ(events[2].time, 1.0);
    EXPECT_EQ(events[2].id, events[0].id); // same payload id
    EXPECT_EQ(events[3].domainName, "default");
}

TEST(SimKernel, RingBufferSinkKeepsTheNewestEvents)
{
    he::SimKernel k;
    he::RingBufferTraceSink sink(3);
    k.setTraceSink(&sink);
    for (int i = 0; i < 5; ++i)
        k.schedule(double(i + 1), [] {});
    k.runAll();
    // 5 schedules + 5 fires observed; only the last 3 fires survive.
    EXPECT_EQ(sink.observed(), 10u);
    EXPECT_EQ(sink.dropped(), 7u);
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, he::TraceKind::Fired);
    EXPECT_DOUBLE_EQ(events[0].when, 3.0);
    EXPECT_DOUBLE_EQ(events[2].when, 5.0);
}

TEST(SimKernel, BufferedTraceEventsOutliveTheKernel)
{
    // TraceEvents own their domain names: a sink buffer must stay valid
    // after its kernel is destroyed (the fleet's epoch kernel is a local
    // of FleetSimulation::run(), while callers inspect the sink after).
    he::RingBufferTraceSink sink(8);
    {
        he::SimKernel k;
        const auto epoch = k.registerDomain("fleet-epoch");
        k.setTraceSink(&sink);
        k.schedule(1.0, epoch, [] {});
        k.runAll();
    }
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].domainName, "fleet-epoch");
    EXPECT_EQ(events[1].domainName, "fleet-epoch");
}

TEST(SimKernel, CsvSinkWritesOneRowPerEvent)
{
    he::SimKernel k;
    const auto thermal = k.registerDomain("thermal");
    std::ostringstream csv;
    he::CsvTraceSink sink(csv);
    k.setTraceSink(&sink);
    k.schedule(0.5, thermal, [] {});
    k.runAll();
    EXPECT_EQ(sink.rows(), 2u);

    std::istringstream in(csv.str());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "time_sec,when_sec,domain,kind,id");
    std::getline(in, line);
    EXPECT_NE(line.find("thermal,scheduled"), std::string::npos);
    std::getline(in, line);
    EXPECT_NE(line.find("thermal,fired"), std::string::npos);
}

TEST(SimKernel, FiredCounterTracksExecutedEvents)
{
    he::SimKernel k;
    for (int i = 0; i < 3; ++i)
        k.schedule(1.0, [] {});
    EXPECT_EQ(k.fired(), 0u);
    k.runAll();
    EXPECT_EQ(k.fired(), 3u);
}

TEST(SimKernel, RunUntilAdvancesClockPastDrainedQueue)
{
    he::SimKernel k;
    int fired = 0;
    k.schedule(1.0, [&] { ++fired; });
    k.runUntil(10.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(k.now(), 10.0);
}
