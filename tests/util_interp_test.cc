/**
 * @file
 * Unit tests for interpolation and root-finding utilities.
 */
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/interp.h"
#include "util/roots.h"

namespace hu = hddtherm::util;

TEST(PiecewiseLinear, InterpolatesBetweenKnots)
{
    hu::PiecewiseLinear pl({{0.0, 0.0}, {1.0, 10.0}, {3.0, 30.0}});
    EXPECT_DOUBLE_EQ(pl(0.0), 0.0);
    EXPECT_DOUBLE_EQ(pl(0.5), 5.0);
    EXPECT_DOUBLE_EQ(pl(1.0), 10.0);
    EXPECT_DOUBLE_EQ(pl(2.0), 20.0);
    EXPECT_DOUBLE_EQ(pl(3.0), 30.0);
}

TEST(PiecewiseLinear, SortsUnorderedInput)
{
    hu::PiecewiseLinear pl({{3.0, 30.0}, {0.0, 0.0}, {1.0, 10.0}});
    EXPECT_DOUBLE_EQ(pl(2.0), 20.0);
}

TEST(PiecewiseLinear, LinearExtrapolationContinuesSlope)
{
    hu::PiecewiseLinear pl({{1.0, 1.0}, {2.0, 3.0}});
    EXPECT_DOUBLE_EQ(pl(3.0), 5.0);
    EXPECT_DOUBLE_EQ(pl(0.0), -1.0);
}

TEST(PiecewiseLinear, ClampExtrapolationHoldsBoundary)
{
    hu::PiecewiseLinear pl({{1.0, 1.0}, {2.0, 3.0}},
                           hu::PiecewiseLinear::Extrapolate::Clamp);
    EXPECT_DOUBLE_EQ(pl(10.0), 3.0);
    EXPECT_DOUBLE_EQ(pl(-10.0), 1.0);
}

TEST(PiecewiseLinear, SinglePointIsConstant)
{
    hu::PiecewiseLinear pl({{2.0, 7.0}});
    EXPECT_DOUBLE_EQ(pl(-5.0), 7.0);
    EXPECT_DOUBLE_EQ(pl(2.0), 7.0);
    EXPECT_DOUBLE_EQ(pl(50.0), 7.0);
}

TEST(PiecewiseLinear, RejectsDuplicateX)
{
    EXPECT_THROW(hu::PiecewiseLinear({{1.0, 1.0}, {1.0, 2.0}}),
                 hu::ModelError);
}

TEST(PiecewiseLinear, RejectsEmpty)
{
    std::vector<std::pair<double, double>> empty;
    EXPECT_THROW({ hu::PiecewiseLinear pl(empty); }, hu::ModelError);
}

TEST(PowerLawFit, RecoversExactPowerLaw)
{
    // y = 2.5 * x^1.7
    std::vector<std::pair<double, double>> pts;
    for (double x : {0.5, 1.0, 2.0, 4.0, 8.0})
        pts.emplace_back(x, 2.5 * std::pow(x, 1.7));
    hu::PowerLawFit fit(pts);
    EXPECT_NEAR(fit.coefficient(), 2.5, 1e-9);
    EXPECT_NEAR(fit.exponent(), 1.7, 1e-9);
    EXPECT_NEAR(fit(3.0), 2.5 * std::pow(3.0, 1.7), 1e-9);
}

TEST(PowerLawFit, RejectsNonPositiveSamples)
{
    EXPECT_THROW(hu::PowerLawFit({{1.0, 1.0}, {2.0, -1.0}}), hu::ModelError);
    EXPECT_THROW(hu::PowerLawFit({{0.0, 1.0}, {2.0, 1.0}}), hu::ModelError);
}

TEST(Bisect, FindsRootOfMonotoneFunction)
{
    const double root = hu::bisect(
        [](double x) { return x * x - 2.0; }, 0.0, 2.0, {1e-10, 200});
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-8);
}

TEST(Bisect, AcceptsRootAtEndpoint)
{
    EXPECT_DOUBLE_EQ(
        hu::bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(
        hu::bisect([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Bisect, ThrowsWhenNotBracketed)
{
    EXPECT_THROW(
        hu::bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
        hu::ModelError);
}

TEST(MaxSatisfying, LocatesThreshold)
{
    const double x = hu::maxSatisfying(
        [](double v) { return v <= 3.25; }, 0.0, 10.0, {1e-9, 200});
    EXPECT_NEAR(x, 3.25, 1e-6);
}

TEST(MaxSatisfying, ReturnsHiWhenAllSatisfy)
{
    const double x =
        hu::maxSatisfying([](double) { return true; }, 0.0, 10.0);
    EXPECT_DOUBLE_EQ(x, 10.0);
}

TEST(MaxSatisfying, ThrowsWhenLoFails)
{
    EXPECT_THROW(
        hu::maxSatisfying([](double) { return false; }, 0.0, 1.0),
        hu::ModelError);
}

TEST(Lerp, Endpoints)
{
    EXPECT_DOUBLE_EQ(hu::lerp(2.0, 6.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(hu::lerp(2.0, 6.0, 1.0), 6.0);
    EXPECT_DOUBLE_EQ(hu::lerp(2.0, 6.0, 0.25), 3.0);
}
