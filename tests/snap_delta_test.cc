/**
 * @file
 * Torture tests of delta checkpoints, payload compression, and the
 * checkpoint sink: resume from a compressed base+delta chain must be
 * bit-identical to the uninterrupted run (fault-free, faulted, and
 * fleet runs across thread counts); corrupted or truncated containers,
 * missing or rewritten bases, and failing sinks must all fail loudly;
 * and retention must never orphan a base a surviving delta depends on.
 */
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "fault/fault_schedule.h"
#include "fleet/fleet_sim.h"
#include "snap/checkpoint.h"
#include "snap/delta.h"
#include "snap/format.h"
#include "snap/sink.h"
#include "snap/state.h"
#include "util/error.h"

namespace fs = std::filesystem;
namespace hd = hddtherm::dtm;
namespace hf = hddtherm::fleet;
namespace hfault = hddtherm::fault;
namespace hs = hddtherm::sim;
namespace hsnap = hddtherm::snap;
namespace hu = hddtherm::util;

namespace {

/// A hot 2.6" drive (steady state above the envelope at full duty) so
/// DTM policies actuate — and section payloads actually churn.
hs::SystemConfig
hotDrive()
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = 24534.0;
    cfg.disk.rpmChangeSecPerKrpm = 0.02;
    cfg.disks = 1;
    return cfg;
}

std::vector<hs::IoRequest>
fixedWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        out.push_back(r);
    }
    return out;
}

void
expectSameResult(const hd::CoSimResult& a, const hd::CoSimResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.meanTempC, b.meanTempC);
    EXPECT_EQ(a.envelopeExceededSec, b.envelopeExceededSec);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.meanVcmDuty, b.meanVcmDuty);
    EXPECT_EQ(a.invalidReadings, b.invalidReadings);
    EXPECT_EQ(a.failSafeActivations, b.failSafeActivations);
    EXPECT_EQ(a.failSafeSec, b.failSafeSec);
}

void
expectSameFleetResult(const hf::FleetResult& a, const hf::FleetResult& b)
{
    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.meanLatencyMs, b.meanLatencyMs);
    EXPECT_EQ(a.p95LatencyMs, b.p95LatencyMs);
    EXPECT_EQ(a.maxDriveTempC, b.maxDriveTempC);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.speedChanges, b.speedChanges);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.shards, b.shards);
    ASSERT_EQ(a.chassis.size(), b.chassis.size());
    for (std::size_t i = 0; i < a.chassis.size(); ++i) {
        EXPECT_EQ(a.chassis[i].peakDriveTempC,
                  b.chassis[i].peakDriveTempC);
        EXPECT_EQ(a.chassis[i].gateEvents, b.chassis[i].gateEvents);
    }
}

fs::path
scratchDir(const std::string& name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
readFileBytes(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFileBytes(const fs::path& path, const std::vector<std::uint8_t>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
}

std::vector<fs::path>
checkpointFiles(const fs::path& dir)
{
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir))
        files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

std::vector<std::uint8_t>
endStateBytes(const hd::CoSimEngine& engine)
{
    hsnap::CheckpointWriter out(0);
    engine.saveSections(out);
    return out.serialize();
}

hsnap::CheckpointPolicy
deltaPolicy(const fs::path& dir, double every_sec,
            std::uint64_t every_epochs = 0)
{
    hsnap::CheckpointPolicy policy;
    policy.directory = dir.string();
    policy.everySec = every_sec;
    policy.everyEpochs = every_epochs;
    policy.retain = 1000; // keep everything: tests pick mid-run files
    policy.delta = true;
    policy.compress = true;
    return policy;
}

/// A delta-chain leaf (anchor + >= @p min_deltas deltas) from @p files.
fs::path
deltaLeafWithChain(const std::vector<fs::path>& files,
                   std::uint64_t min_deltas)
{
    for (const auto& file : files) {
        const hsnap::CheckpointReader reader(file.string());
        if (hsnap::isDeltaCheckpoint(reader) &&
            hsnap::readDeltaManifest(reader).chainLength >= min_deltas)
            return file;
    }
    ADD_FAILURE() << "no delta leaf with a chain of " << min_deltas
                  << " among " << files.size() << " checkpoints";
    return {};
}

/// Uninterrupted delta+compressed run vs resume-from-mid-chain: same
/// results, same end state, byte-identical post-resume checkpoints.
void
checkDeltaResumeBitIdentity(const hd::CoSimConfig& cfg,
                            const std::string& tag)
{
    const auto workload = fixedWorkload(
        400, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    const auto dir_a = scratchDir("hddtherm-snap-delta-" + tag + "-a");
    hd::CoSimEngine full(cfg);
    full.enableCheckpoints(deltaPolicy(dir_a, 0.5));
    full.start(workload);
    full.advanceToCompletion();

    // A delta run must also be a pure observer: identical to bare.
    hd::CoSimEngine bare(cfg);
    bare.start(workload);
    bare.advanceToCompletion();
    expectSameResult(bare.result(), full.result());

    // The acceptance bar: resume from a leaf whose chain carries a base
    // plus at least three deltas, all compressed.
    const auto files_a = checkpointFiles(dir_a);
    ASSERT_GE(files_a.size(), 5u);
    const fs::path leaf = deltaLeafWithChain(files_a, 3);
    std::vector<hsnap::ChainHop> lineage;
    hsnap::resolveCheckpointChain(leaf.string(), &lineage);
    ASSERT_GE(lineage.size(), 4u); // leaf + >=2 deltas + anchor
    EXPECT_FALSE(lineage.back().delta);

    const auto dir_b = scratchDir("hddtherm-snap-delta-" + tag + "-b");
    hd::CoSimEngine resumed(cfg);
    resumed.enableCheckpoints(deltaPolicy(dir_b, 0.5));
    resumed.restoreFromCheckpoint(leaf.string(), workload);
    resumed.advanceToCompletion();

    expectSameResult(full.result(), resumed.result());
    EXPECT_EQ(endStateBytes(full), endStateBytes(resumed));
    // Post-resume checkpoints — deltas diffed against a restored base
    // and anchors alike — must be byte-identical to the uninterrupted
    // run's files of the same index.
    const auto files_b = checkpointFiles(dir_b);
    EXPECT_GE(files_b.size(), 1u);
    for (const auto& file : files_b) {
        const fs::path original = dir_a / file.filename();
        ASSERT_TRUE(fs::exists(original)) << file.filename();
        EXPECT_EQ(readFileBytes(file), readFileBytes(original))
            << file.filename();
    }
    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
}

/// A sink that fails the Nth put() and every one after it, the way a
/// full disk fails: prior objects stay durable and readable.
class FailingSink : public hsnap::MemoryCheckpointSink
{
  public:
    explicit FailingSink(std::size_t fail_from) : fail_from_(fail_from) {}

    void put(const std::string& name,
             const std::vector<std::uint8_t>& bytes) override
    {
        if (++puts_ >= fail_from_)
            throw hu::ModelError("sink put '" + name +
                                 "' failed: no space left on device");
        MemoryCheckpointSink::put(name, bytes);
    }

  private:
    std::size_t fail_from_;
    std::size_t puts_ = 0;
};

/// One-section checkpoint whose payload varies with @p index (plus a
/// constant section, so deltas have something to omit).
hsnap::CheckpointWriter
tinyCheckpoint(std::uint64_t index)
{
    hsnap::CheckpointWriter ckpt(0xc0fe);
    hsnap::StateWriter stable("stable");
    stable.str("motto", "never changes");
    ckpt.addSection(std::move(stable));
    hsnap::StateWriter moving("moving");
    moving.u64("tick", index * 1000);
    std::vector<double> values;
    for (std::uint64_t i = 0; i < 64; ++i)
        values.push_back(double(index * 64 + i) * 0.5);
    moving.f64vec("values", values);
    ckpt.addSection(std::move(moving));
    return ckpt;
}

} // namespace

TEST(SnapDelta, FaultFreeGateRunResumesBitIdenticallyFromDeltaChain)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    checkDeltaResumeBitIdentity(cfg, "gate");
}

TEST(SnapDelta, FaultedGovernorRunResumesBitIdenticallyFromDeltaChain)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GovernSpeed;
    cfg.rpmLadder = {15020.0, 18000.0, 21000.0, 24534.0};
    cfg.faults = hfault::FaultSchedule(
        {
            {0.5, hfault::FaultKind::SensorNoise, 0.3, 3.0, -1},
            {1.2, hfault::FaultKind::SensorDropout, 0.0, 1.0, -1},
            {2.0, hfault::FaultKind::AmbientSpike, 4.0, 2.0, -1},
        },
        0x5eedu);
    checkDeltaResumeBitIdentity(cfg, "governor");
}

TEST(SnapDelta, CompressedFullCheckpointsResumeBitIdentically)
{
    // Compression without delta mode: the flag composes independently.
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    const auto workload = fixedWorkload(
        300, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    const auto dir_a = scratchDir("hddtherm-snap-delta-lz-a");
    auto policy_a = deltaPolicy(dir_a, 1.0);
    policy_a.delta = false;
    hd::CoSimEngine full(cfg);
    full.enableCheckpoints(policy_a);
    full.start(workload);
    full.advanceToCompletion();

    const auto files_a = checkpointFiles(dir_a);
    ASSERT_GE(files_a.size(), 2u);
    for (const auto& file : files_a) {
        EXPECT_FALSE(
            hsnap::isDeltaCheckpoint(hsnap::CheckpointReader(file.string())))
            << file.filename();
    }
    const fs::path mid = files_a[files_a.size() / 2];

    const auto dir_b = scratchDir("hddtherm-snap-delta-lz-b");
    auto policy_b = policy_a;
    policy_b.directory = dir_b.string();
    hd::CoSimEngine resumed(cfg);
    resumed.enableCheckpoints(policy_b);
    resumed.restoreFromCheckpoint(mid.string(), workload);
    resumed.advanceToCompletion();

    expectSameResult(full.result(), resumed.result());
    for (const auto& file : checkpointFiles(dir_b)) {
        EXPECT_EQ(readFileBytes(file),
                  readFileBytes(dir_a / file.filename()))
            << file.filename();
    }
    fs::remove_all(dir_a);
    fs::remove_all(dir_b);
}

TEST(SnapDelta, FleetResumesBitIdenticallyFromDeltaChainAcrossThreads)
{
    hf::FleetConfig cfg;
    cfg.racks = 1;
    cfg.rack.chassisCount = 2;
    cfg.chassis.bays = 3;
    cfg.bay.system = hotDrive();
    cfg.bay.policy = hd::DtmPolicy::GateRequests;
    cfg.workload.requests = 150;
    cfg.workload.arrivalRatePerSec = 100.0;
    cfg.epochSec = 0.25;
    cfg.maxSimulatedSec = 600.0;
    cfg.seed = 7;

    const auto dir = scratchDir("hddtherm-snap-delta-fleet");
    hf::FleetSimulation fleet(cfg);
    auto policy = deltaPolicy(dir, 0.0, 10);
    policy.anchorEvery = 4;
    const auto full = fleet.run(2, nullptr, &policy);

    const auto files = checkpointFiles(dir);
    ASSERT_GE(files.size(), 3u);
    const fs::path leaf = deltaLeafWithChain(files, 1);
    for (const int threads : {1, 4}) {
        const auto resumed = fleet.resume(leaf.string(), threads);
        expectSameFleetResult(full, resumed);
    }

    // Resumed-with-checkpoints: post-resume delta files byte-match the
    // uninterrupted run's.
    const auto dir_b = scratchDir("hddtherm-snap-delta-fleet-b");
    auto policy_b = policy;
    policy_b.directory = dir_b.string();
    const auto resumed =
        fleet.resume(leaf.string(), 1, nullptr, &policy_b);
    expectSameFleetResult(full, resumed);
    const auto files_b = checkpointFiles(dir_b);
    EXPECT_GE(files_b.size(), 1u);
    for (const auto& file : files_b) {
        EXPECT_EQ(readFileBytes(file),
                  readFileBytes(dir / file.filename()))
            << file.filename();
    }
    fs::remove_all(dir);
    fs::remove_all(dir_b);
}

TEST(SnapDelta, AnchorCadenceIsAPureFunctionOfTheIndex)
{
    hsnap::CheckpointPolicy policy;
    policy.delta = true;
    policy.anchorEvery = 4;
    policy.retain = 1000;
    auto sink = std::make_unique<hsnap::MemoryCheckpointSink>();
    auto* mem = sink.get();
    hsnap::CheckpointManager mgr(policy, std::move(sink));

    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(mgr.isAnchor(i), i % 4 == 0) << i;
        mgr.write(tinyCheckpoint(i), i);
    }
    mgr.flush();
    EXPECT_EQ(mem->size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        const hsnap::CheckpointReader reader(
            mgr.fileNameFor(i), mem->get(mgr.fileNameFor(i)));
        EXPECT_EQ(hsnap::isDeltaCheckpoint(reader), i % 4 != 0) << i;
    }
}

TEST(SnapDelta, DeltaCarriesOnlyChangedSectionsAndAFullManifest)
{
    hsnap::CheckpointPolicy policy;
    policy.delta = true;
    policy.anchorEvery = 8;
    auto sink = std::make_unique<hsnap::MemoryCheckpointSink>();
    auto* mem = sink.get();
    hsnap::CheckpointManager mgr(policy, std::move(sink));
    mgr.write(tinyCheckpoint(0), 0);
    mgr.write(tinyCheckpoint(1), 1);
    mgr.flush();

    const hsnap::CheckpointReader delta(mgr.fileNameFor(1),
                                        mem->get(mgr.fileNameFor(1)));
    ASSERT_TRUE(hsnap::isDeltaCheckpoint(delta));
    EXPECT_FALSE(delta.has("stable")); // unchanged => omitted
    EXPECT_TRUE(delta.has("moving"));

    const auto manifest = hsnap::readDeltaManifest(delta);
    EXPECT_EQ(manifest.index, 1u);
    EXPECT_EQ(manifest.baseIndex, 0u);
    EXPECT_EQ(manifest.baseFile, mgr.fileNameFor(0));
    EXPECT_EQ(manifest.chainLength, 1u);
    // The manifest lists the *full* logical section set, carried or not.
    EXPECT_EQ(manifest.names,
              (std::vector<std::string>{"stable", "moving"}));
    const hsnap::CheckpointReader base(mgr.fileNameFor(0),
                                       mem->get(mgr.fileNameFor(0)));
    EXPECT_EQ(manifest.baseHash, base.containerHash());
}

TEST(SnapDelta, ChainLineageIsReportedLeafFirst)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    const auto workload = fixedWorkload(
        400, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    const auto dir = scratchDir("hddtherm-snap-delta-lineage");
    hd::CoSimEngine engine(cfg);
    engine.enableCheckpoints(deltaPolicy(dir, 0.5));
    engine.start(workload);
    engine.advanceToCompletion();

    const auto files = checkpointFiles(dir);
    const fs::path leaf = deltaLeafWithChain(files, 3);
    std::vector<hsnap::ChainHop> lineage;
    hsnap::resolveCheckpointChain(leaf.string(), &lineage);

    ASSERT_GE(lineage.size(), 4u);
    EXPECT_EQ(lineage.front().path, leaf.string());
    EXPECT_FALSE(lineage.back().delta); // ends at the anchor
    EXPECT_EQ(lineage.back().chainLength, 0u);
    for (std::size_t i = 0; i + 1 < lineage.size(); ++i) {
        EXPECT_TRUE(lineage[i].delta);
        EXPECT_EQ(lineage[i].chainLength, lineage.size() - 1 - i);
        // Each hop's baseFile names the next hop down the chain.
        EXPECT_EQ(lineage[i].baseFile,
                  fs::path(lineage[i + 1].path).filename().string());
        EXPECT_EQ(lineage[i].index, lineage[i + 1].index + 1);
    }
    const std::string text = hsnap::describeChain(lineage);
    for (const auto& hop : lineage)
        EXPECT_NE(text.find(fs::path(hop.path).filename().string()),
                  std::string::npos);
    fs::remove_all(dir);
}

TEST(SnapDelta, TruncatedAndCorruptedChainFilesFailLoudlyNamingTheSection)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    const auto workload = fixedWorkload(
        400, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    const auto dir = scratchDir("hddtherm-snap-delta-corrupt");
    hd::CoSimEngine engine(cfg);
    engine.enableCheckpoints(deltaPolicy(dir, 0.5));
    engine.start(workload);
    engine.advanceToCompletion();

    const fs::path leaf = deltaLeafWithChain(checkpointFiles(dir), 2);
    const auto pristine = readFileBytes(leaf);

    // Truncation sweep: every cut must be a loud parse failure.
    for (const std::size_t keep :
         {std::size_t(0), std::size_t(4), std::size_t(7),
          std::size_t(16), std::size_t(60), pristine.size() / 2,
          pristine.size() - 1}) {
        writeFileBytes(leaf, {pristine.begin(),
                              pristine.begin() + std::ptrdiff_t(keep)});
        EXPECT_THROW(hsnap::CheckpointReader(leaf.string()),
                     hu::ModelError)
            << "kept " << keep << " of " << pristine.size();
        EXPECT_THROW(hsnap::resolveCheckpointChain(leaf.string()),
                     hu::ModelError);
    }

    // A flipped byte inside each stored payload — compressed, dict-
    // encoded, and the manifest alike — must fail naming the section.
    writeFileBytes(leaf, pristine);
    const hsnap::CheckpointReader reader(leaf.string());
    for (const auto& name : reader.sectionNames()) {
        const auto& stored = reader.storedBytes(name);
        ASSERT_FALSE(stored.empty());
        const auto it = std::search(pristine.begin(), pristine.end(),
                                    stored.begin(), stored.end());
        ASSERT_NE(it, pristine.end()) << name;
        auto bent = pristine;
        bent[std::size_t(it - pristine.begin())] ^= 0x01;
        writeFileBytes(leaf, bent);
        try {
            hsnap::resolveCheckpointChain(leaf.string());
            ADD_FAILURE() << "corrupt section " << name << " resolved";
        } catch (const hu::ModelError& e) {
            EXPECT_NE(std::strstr(e.what(), name.c_str()), nullptr)
                << e.what();
        }
    }
    writeFileBytes(leaf, pristine);
    EXPECT_NO_THROW(hsnap::resolveCheckpointChain(leaf.string()));
    fs::remove_all(dir);
}

TEST(SnapDelta, MissingOrRewrittenBaseIsALoudErrorNeverAFreshStart)
{
    hd::CoSimConfig cfg;
    cfg.system = hotDrive();
    cfg.policy = hd::DtmPolicy::GateRequests;
    const auto workload = fixedWorkload(
        400, hs::StorageSystem(cfg.system).logicalSectors(), 100.0);

    const auto dir = scratchDir("hddtherm-snap-delta-missing");
    hd::CoSimEngine engine(cfg);
    engine.enableCheckpoints(deltaPolicy(dir, 0.5));
    engine.start(workload);
    engine.advanceToCompletion();

    const fs::path leaf = deltaLeafWithChain(checkpointFiles(dir), 2);
    const auto manifest = hsnap::readDeltaManifest(
        hsnap::CheckpointReader(leaf.string()));
    const fs::path base = dir / manifest.baseFile;
    const auto base_bytes = readFileBytes(base);

    // Base deleted (over-pruned, say): resolving and resuming both fail
    // loudly; nothing falls back to a fresh start.
    fs::remove(base);
    try {
        hsnap::resolveCheckpointChain(leaf.string());
        ADD_FAILURE() << "chain with a missing base resolved";
    } catch (const hu::ModelError& e) {
        EXPECT_NE(std::strstr(e.what(), "missing base"), nullptr)
            << e.what();
        EXPECT_NE(std::strstr(e.what(), "pruned"), nullptr) << e.what();
    }
    hd::CoSimEngine fresh(cfg);
    EXPECT_THROW(fresh.restoreFromCheckpoint(leaf.string(), workload),
                 hu::ModelError);

    // Base replaced by a different (valid) container: the pinned hash
    // must catch it.
    const auto files = checkpointFiles(dir);
    ASSERT_FALSE(files.empty());
    writeFileBytes(base, readFileBytes(files.front() == base
                                           ? files.back()
                                           : files.front()));
    try {
        hsnap::resolveCheckpointChain(leaf.string());
        ADD_FAILURE() << "chain with a rewritten base resolved";
    } catch (const hu::ModelError& e) {
        EXPECT_NE(std::strstr(e.what(), "hash"), nullptr) << e.what();
    }

    writeFileBytes(base, base_bytes);
    EXPECT_NO_THROW(hsnap::resolveCheckpointChain(leaf.string()));
    fs::remove_all(dir);
}

TEST(SnapDelta, RetentionNeverOrphansABaseASurvivingDeltaNeeds)
{
    const auto dir = scratchDir("hddtherm-snap-delta-retention");
    hsnap::CheckpointPolicy policy;
    policy.directory = dir.string();
    policy.delta = true;
    policy.compress = true;
    policy.anchorEvery = 4;
    policy.retain = 2;
    {
        hsnap::CheckpointManager mgr(policy);
        for (std::uint64_t i = 0; i <= 6; ++i)
            mgr.write(tinyCheckpoint(i), i);
        mgr.flush();
    }
    // Newest two are indices 5 and 6 — both deltas.  Their chain runs
    // back to the anchor at 4, which retention must have kept even
    // though it is older than the retain window; everything before it
    // must be gone.
    std::vector<std::string> names;
    for (const auto& file : checkpointFiles(dir))
        names.push_back(file.filename().string());
    hsnap::CheckpointManager probe(policy);
    EXPECT_EQ(names, (std::vector<std::string>{probe.fileNameFor(4),
                                               probe.fileNameFor(5),
                                               probe.fileNameFor(6)}));
    std::vector<hsnap::ChainHop> lineage;
    EXPECT_NO_THROW(hsnap::resolveCheckpointChain(
        probe.pathFor(6), &lineage));
    EXPECT_EQ(lineage.size(), 3u);
    fs::remove_all(dir);
}

TEST(SnapDelta, FailingSinkRaisesStickyErrorAndPreservesTheDurableChain)
{
    hsnap::CheckpointPolicy policy;
    policy.delta = true;
    policy.compress = true;
    policy.anchorEvery = 8;
    auto sink = std::make_unique<FailingSink>(3); // third put ENOSPACEs
    auto* mem = sink.get();
    hsnap::CheckpointManager mgr(policy, std::move(sink));

    mgr.write(tinyCheckpoint(0), 0);
    mgr.write(tinyCheckpoint(1), 1);
    mgr.flush(); // both durable
    const auto bytes0 = mem->get(mgr.fileNameFor(0));
    const auto bytes1 = mem->get(mgr.fileNameFor(1));

    mgr.write(tinyCheckpoint(2), 2);
    try {
        mgr.flush();
        ADD_FAILURE() << "flush over a failing sink succeeded";
    } catch (const hu::ModelError& e) {
        EXPECT_NE(std::strstr(e.what(), "no space left"), nullptr)
            << e.what();
    }
    // The error is sticky: later writes and flushes keep failing rather
    // than silently losing checkpoints.
    EXPECT_THROW(mgr.write(tinyCheckpoint(3), 3), hu::ModelError);
    EXPECT_THROW(mgr.flush(), hu::ModelError);

    // The failed delta never landed and the prior durable chain is
    // untouched and still consistent.
    EXPECT_FALSE(mem->contains(mgr.fileNameFor(2)));
    EXPECT_EQ(mem->get(mgr.fileNameFor(0)), bytes0);
    EXPECT_EQ(mem->get(mgr.fileNameFor(1)), bytes1);
    const hsnap::CheckpointReader survivor(mgr.fileNameFor(1), bytes1);
    ASSERT_TRUE(hsnap::isDeltaCheckpoint(survivor));
    EXPECT_EQ(hsnap::readDeltaManifest(survivor).baseHash,
              hsnap::CheckpointReader(mgr.fileNameFor(0), bytes0)
                  .containerHash());
}

TEST(SnapDelta, MemorySinkImplementsTheFullContract)
{
    hsnap::MemoryCheckpointSink sink;
    EXPECT_FALSE(sink.contains("a"));
    EXPECT_THROW(sink.get("a"), hu::ModelError);
    sink.put("a", {1, 2, 3});
    sink.put("b", {4});
    EXPECT_TRUE(sink.contains("a"));
    EXPECT_EQ(sink.get("a"), (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(sink.size(), 2u);
    auto names = sink.list();
    std::sort(names.begin(), names.end());
    EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(sink.describe("a"), "mem://a");
    sink.put("a", {9}); // atomic replace
    EXPECT_EQ(sink.get("a"), (std::vector<std::uint8_t>{9}));
    sink.remove("a");
    EXPECT_FALSE(sink.contains("a"));
    EXPECT_NO_THROW(sink.remove("a")); // absence is not an error
    EXPECT_EQ(sink.size(), 1u);
}
