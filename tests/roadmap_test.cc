/**
 * @file
 * Tests of the scaling timeline and roadmap engine against the paper's §4
 * narrative and Table 3 / Figure 2 numbers.
 */
#include <gtest/gtest.h>

#include "roadmap/roadmap.h"
#include "roadmap/scaling.h"
#include "util/error.h"

namespace hr = hddtherm::roadmap;
namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

TEST(Timeline, AnchorYearValues)
{
    hr::TechnologyTimeline tl;
    EXPECT_DOUBLE_EQ(tl.bpi(1999), 270e3);
    EXPECT_DOUBLE_EQ(tl.tpi(1999), 20e3);
    EXPECT_DOUBLE_EQ(tl.targetIdrMBps(1999), 47.0);
}

TEST(Timeline, EarlyCgrThrough2003)
{
    hr::TechnologyTimeline tl;
    EXPECT_NEAR(tl.bpi(2000), 270e3 * 1.3, 1.0);
    EXPECT_NEAR(tl.tpi(2003), 20e3 * 1.5 * 1.5 * 1.5 * 1.5, 1.0);
}

TEST(Timeline, LateCgrAfter2003)
{
    hr::TechnologyTimeline tl;
    EXPECT_NEAR(tl.bpi(2004) / tl.bpi(2003), 1.14, 1e-9);
    EXPECT_NEAR(tl.tpi(2004) / tl.tpi(2003), 1.28, 1e-9);
}

TEST(Timeline, TerabitArrivesIn2010)
{
    // Paper: "industry projections predict ... 1 Tb/in^2 in the year 2010".
    hr::TechnologyTimeline tl;
    EXPECT_EQ(tl.terabitYear(), 2010);
}

TEST(Timeline, BarDropsTowardFour)
{
    // BAR is ~6-7 early and expected to drop to ~4 or below (paper §4).
    hr::TechnologyTimeline tl;
    EXPECT_GT(tl.bitAspectRatio(2002), 6.0);
    EXPECT_LT(tl.bitAspectRatio(2010), 4.0);
}

TEST(Timeline, IdrTargetMatchesTable3)
{
    hr::TechnologyTimeline tl;
    EXPECT_NEAR(tl.targetIdrMBps(2002), 128.97, 0.01);
    EXPECT_NEAR(tl.targetIdrMBps(2007), 693.62, 0.05);
    EXPECT_NEAR(tl.targetIdrMBps(2012), 3730.46, 0.30);
}

TEST(Timeline, RejectsPreAnchorYears)
{
    hr::TechnologyTimeline tl;
    EXPECT_THROW(tl.bpi(1998), hu::ModelError);
}

TEST(Roadmap, DensityIdrMatchesTable3)
{
    // Table 3's IDR_density column for the 2.6" size (within ~2%).
    hr::RoadmapEngine engine;
    const auto p02 = engine.evaluate(2002, 2.6, 1);
    EXPECT_NEAR(p02.densityIdr, 128.14, 0.02 * 128.14);
    const auto p07 = engine.evaluate(2007, 2.6, 1);
    EXPECT_NEAR(p07.densityIdr, 281.19, 0.02 * 281.19);
    const auto p12 = engine.evaluate(2012, 2.6, 1);
    EXPECT_NEAR(p12.densityIdr, 390.03, 0.02 * 390.03);
}

TEST(Roadmap, RequiredRpmMatchesTable3)
{
    hr::RoadmapEngine engine;
    // Required RPM = target / density ratio; the paper's 2.6" column.
    EXPECT_NEAR(engine.evaluate(2002, 2.6, 1).requiredRpm, 15098, 350);
    EXPECT_NEAR(engine.evaluate(2005, 2.6, 1).requiredRpm, 24534, 550);
    EXPECT_NEAR(engine.evaluate(2009, 2.6, 1).requiredRpm, 55819, 1300);
    EXPECT_NEAR(engine.evaluate(2012, 2.6, 1).requiredRpm, 143470, 3200);
}

TEST(Roadmap, TerabitTransitionRaisesRequiredRpmSharply)
{
    // Paper: ~70% RPM jump from 2009 to 2010 due to the ECC step.
    hr::RoadmapEngine engine;
    const double r09 = engine.evaluate(2009, 2.6, 1).requiredRpm;
    const double r10 = engine.evaluate(2010, 2.6, 1).requiredRpm;
    EXPECT_GT(r10 / r09, 1.5);
    EXPECT_LT(r10 / r09, 1.9);
}

TEST(Roadmap, SmallerPlattersNeedHigherRpmButRunCooler)
{
    hr::RoadmapEngine engine;
    const auto p26 = engine.evaluate(2005, 2.6, 1);
    const auto p21 = engine.evaluate(2005, 2.1, 1);
    const auto p16 = engine.evaluate(2005, 1.6, 1);
    EXPECT_GT(p21.requiredRpm, p26.requiredRpm);
    EXPECT_GT(p16.requiredRpm, p21.requiredRpm);
    EXPECT_LT(p21.requiredRpmTempC, p26.requiredRpmTempC);
    EXPECT_LT(p16.requiredRpmTempC, p21.requiredRpmTempC);
}

TEST(Roadmap, RequiredTempsEventuallyExceedEnvelope)
{
    // Even the 1.6" size cannot meet the target forever (paper §4.1).
    hr::RoadmapEngine engine;
    EXPECT_LT(engine.evaluate(2002, 1.6, 1).requiredRpmTempC,
              ht::kThermalEnvelopeC);
    EXPECT_GT(engine.evaluate(2012, 1.6, 1).requiredRpmTempC,
              ht::kThermalEnvelopeC);
}

TEST(Roadmap, FalloffYearsOrderedBySize)
{
    // Paper Figure 2 (1 platter): 2.6" falls off first, then 2.1", then
    // 1.6" — the 40% CGR is sustainable until roughly 2006.
    hr::RoadmapEngine engine;
    const int y26 = engine.lastYearOnTarget(2.6, 1);
    const int y21 = engine.lastYearOnTarget(2.1, 1);
    const int y16 = engine.lastYearOnTarget(1.6, 1);
    EXPECT_LE(y26, y21);
    EXPECT_LE(y21, y16);
    EXPECT_GE(y16, 2005);
    EXPECT_LE(y16, 2008);
    // The 2.6" size is borderline at the very start: the paper's own
    // Table 3 puts its 2002 required-RPM temperature at 45.24 C, a hair
    // over the 45.22 C envelope, so "never on target" is acceptable.
    EXPECT_GE(y26, 2001);
    EXPECT_LE(y26, 2004);
}

TEST(Roadmap, CapacityGrowsWithDensityWithinASize)
{
    hr::RoadmapEngine engine;
    const auto series = engine.series(2.6, 1);
    for (std::size_t i = 1; i < series.size(); ++i) {
        if (series[i].terabit == series[i - 1].terabit) {
            EXPECT_GT(series[i].capacityGB, series[i - 1].capacityGB)
                << "year " << series[i].year;
        }
    }
}

TEST(Roadmap, TerabitEccStepDentsCapacityGrowth)
{
    // The ECC jump from 10% to 35% claws back capacity (and IDR) in 2010.
    hr::RoadmapEngine engine;
    const auto p09 = engine.evaluate(2009, 2.6, 1);
    const auto p10 = engine.evaluate(2010, 2.6, 1);
    // Density still grows 46%/yr but usable capacity grows much less.
    EXPECT_LT(p10.capacityGB / p09.capacityGB, 1.15);
    EXPECT_LT(p10.achievableIdr, p09.achievableIdr);
}

TEST(Roadmap, MorePlattersMeanMoreCapacitySameIdr)
{
    hr::RoadmapEngine engine;
    const auto one = engine.evaluate(2004, 2.1, 1);
    const auto four = engine.evaluate(2004, 2.1, 4);
    EXPECT_NEAR(four.capacityGB, 4.0 * one.capacityGB,
                0.01 * four.capacityGB);
    EXPECT_DOUBLE_EQ(four.densityIdr, one.densityIdr);
}

TEST(Roadmap, CoolingNormalizationEqualizesStartOfRoadmap)
{
    // With the per-count cooling budget, all platter counts have (nearly)
    // the same envelope-limited RPM at the 2.6" reference point.
    hr::RoadmapEngine engine;
    const auto one = engine.evaluate(2002, 2.6, 1);
    const auto four = engine.evaluate(2002, 2.6, 4);
    EXPECT_NEAR(four.maxRpm, one.maxRpm, 0.05 * one.maxRpm);
}

TEST(Roadmap, BetterCoolingExtendsTheRoadmap)
{
    // Figure 3: 5 C / 10 C cooler ambients lengthen the on-target window.
    hr::RoadmapOptions base;
    hr::RoadmapOptions cooler5 = base;
    cooler5.ambientC = base.ambientC - 5.0;
    hr::RoadmapOptions cooler10 = base;
    cooler10.ambientC = base.ambientC - 10.0;

    const int y_base = hr::RoadmapEngine(base).lastYearOnTarget(1.6, 1);
    const int y_5 = hr::RoadmapEngine(cooler5).lastYearOnTarget(1.6, 1);
    const int y_10 = hr::RoadmapEngine(cooler10).lastYearOnTarget(1.6, 1);
    EXPECT_GE(y_5, y_base);
    EXPECT_GE(y_10, y_5);
    EXPECT_GT(y_10, y_base);
}

TEST(Roadmap, SmallEnclosureFallsOffImmediately)
{
    // §4.2.2: a 2.5" enclosure misses the target already in 2002.
    hr::RoadmapOptions opts;
    opts.enclosure = hddtherm::hdd::FormFactor::ff25();
    hr::RoadmapEngine engine(opts);
    EXPECT_FALSE(engine.evaluate(2002, 2.6, 1).meetsTarget);
}

TEST(Roadmap, MaxRpmIndependentOfYear)
{
    // The envelope limit depends on geometry/cooling only; density growth
    // moves the IDR, not the thermal ceiling.
    hr::RoadmapEngine engine;
    const double rpm_a = engine.evaluate(2003, 2.1, 1).maxRpm;
    const double rpm_b = engine.evaluate(2009, 2.1, 1).maxRpm;
    EXPECT_NEAR(rpm_a, rpm_b, 2.0);
}

TEST(Roadmap, RejectsBadOptions)
{
    hr::RoadmapOptions opts;
    opts.startYear = 2010;
    opts.endYear = 2005;
    EXPECT_THROW({ hr::RoadmapEngine engine(opts); }, hu::ModelError);
}

/// Figure 2 property sweep: every configuration's achievable IDR curve is
/// eventually dominated by the 40% target line.
class RoadmapConfigSweep
    : public ::testing::TestWithParam<std::pair<double, int>>
{};

TEST_P(RoadmapConfigSweep, EventuallyFallsOffTarget)
{
    const auto [diameter, platters] = GetParam();
    hr::RoadmapEngine engine;
    const auto series = engine.series(diameter, platters);
    EXPECT_FALSE(series.back().meetsTarget)
        << diameter << "\" x" << platters;
    // And once off target, it stays off (no re-crossing).
    bool fell_off = false;
    for (const auto& p : series) {
        if (!p.meetsTarget)
            fell_off = true;
        else
            EXPECT_FALSE(fell_off) << "re-crossed in " << p.year;
    }
}

TEST_P(RoadmapConfigSweep, AchievableIdrNeverExceedsUnconstrained)
{
    const auto [diameter, platters] = GetParam();
    hr::RoadmapEngine engine;
    for (const auto& p : engine.series(diameter, platters)) {
        if (p.meetsTarget)
            EXPECT_LE(p.targetIdr, p.achievableIdr + 1e-9);
        else
            EXPECT_LT(p.achievableIdr, p.targetIdr);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RoadmapConfigSweep,
    ::testing::Values(std::pair{2.6, 1}, std::pair{2.1, 1},
                      std::pair{1.6, 1}, std::pair{2.6, 2},
                      std::pair{2.1, 4}, std::pair{1.6, 4}));
