/**
 * @file
 * Cross-module integration tests: the same physical quantity computed
 * through different layers of the stack must agree, and end-to-end runs
 * must be deterministic.
 */
#include <gtest/gtest.h>

#include "core/energy.h"
#include "core/integrated.h"
#include "core/scenarios.h"
#include "dtm/governor.h"
#include "dtm/slack.h"
#include "hdd/capacity.h"
#include "hdd/drive_catalog.h"
#include "roadmap/roadmap.h"
#include "sim/storage_system.h"
#include "trace/placement.h"

namespace hc = hddtherm::core;
namespace hd = hddtherm::dtm;
namespace hh = hddtherm::hdd;
namespace hr = hddtherm::roadmap;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;
namespace htr = hddtherm::trace;

TEST(Integration, SimulatorCapacityMatchesCapacityModel)
{
    // The simulator's addressable space and the capacity model must agree
    // exactly for every catalog drive — they share the ZoneModel.
    for (const auto& drive : hh::table1Drives()) {
        hs::DiskConfig cfg;
        cfg.geometry = drive.geometry();
        cfg.tech = drive.tech();
        cfg.rpm = drive.rpm;
        hs::EventQueue events;
        hs::SimDisk disk(events, cfg);
        EXPECT_EQ(disk.totalSectors(), drive.layout().totalUserSectors())
            << drive.model;
    }
}

TEST(Integration, SlackAnalysisAgreesWithEnvelopeQueries)
{
    // dtm::analyzeSlack and direct envelope searches are different code
    // paths over the same thermal model.
    const hr::RoadmapEngine engine;
    const auto slack = hd::analyzeSlack(2.6, 1, engine);

    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.rpm = 15000.0;
    cfg.vcmDuty = 1.0;
    EXPECT_NEAR(slack.envelopeRpm, ht::maxRpmWithinEnvelope(cfg), 2.0);
    cfg.vcmDuty = 0.0;
    EXPECT_NEAR(slack.slackRpm, ht::maxRpmWithinEnvelope(cfg), 2.0);
}

TEST(Integration, RoadmapMaxRpmMatchesCalibrationAnchor)
{
    const hr::RoadmapEngine engine;
    EXPECT_NEAR(engine.evaluate(2002, 2.6, 1).maxRpm,
                ht::kEnvelopeRpm26, 30.0);
}

TEST(Integration, IntegratedModelAgreesWithLayers)
{
    hc::DriveDesign design;
    design.geometry.diameterInches = 2.6;
    design.geometry.platters = 4;
    design.tech = {533e3, 64e3};
    design.rpm = 15000.0;
    const auto eval = hc::evaluateDesign(design);

    const auto layout = design.layout();
    EXPECT_DOUBLE_EQ(eval.idrMBps,
                     hh::internalDataRateMBps(layout, design.rpm));
    EXPECT_DOUBLE_EQ(eval.capacity.userGB,
                     hh::computeCapacity(layout).userGB);
    EXPECT_DOUBLE_EQ(eval.steadyAirTempC,
                     ht::steadyAirTempC(design.thermalConfig()));
}

TEST(Integration, ZoneRatesBracketTheIdr)
{
    const auto drive = *hh::findDrive("Seagate Cheetah 15K.3");
    const auto layout = drive.layout();
    const auto rates = hh::zoneDataRatesMBps(layout, drive.rpm);
    ASSERT_EQ(int(rates.size()), layout.zones());
    EXPECT_DOUBLE_EQ(rates.front(),
                     hh::internalDataRateMBps(layout, drive.rpm));
    // Monotone ZBR staircase, with the classic ~2:1 outer/inner ratio.
    for (std::size_t i = 1; i < rates.size(); ++i)
        EXPECT_LT(rates[i], rates[i - 1]);
    EXPECT_NEAR(rates.front() / rates.back(), 2.0, 0.35);
}

TEST(Integration, ScenarioRunsAreDeterministic)
{
    const auto s = hc::figure4Scenario("OLTP", 4000);
    const auto a = s.run(s.baseRpm);
    const auto b = s.run(s.baseRpm);
    EXPECT_DOUBLE_EQ(a.meanMs(), b.meanMs());
    EXPECT_EQ(a.count(), b.count());
    const auto cdf_a = a.histogram().cdf();
    const auto cdf_b = b.histogram().cdf();
    for (std::size_t i = 0; i < cdf_a.size(); ++i)
        EXPECT_DOUBLE_EQ(cdf_a[i], cdf_b[i]);
}

TEST(Integration, EnergyConsistentWithActivityAccounting)
{
    const auto s = hc::figure4Scenario("OLTP", 3000);
    hs::SystemConfig cfg = s.system;
    hs::StorageSystem array(cfg);
    const htr::SyntheticWorkload gen(s.workload);
    array.run(gen.generate(array.logicalSectors()).toRequests());
    const double elapsed = array.events().now();

    for (int d = 0; d < array.diskCount(); ++d) {
        const auto& activity = array.disk(d).activity();
        const auto e = hc::accountEnergy(cfg.disk.geometry, cfg.disk.rpm,
                                         activity, elapsed);
        // VCM energy never exceeds the full-duty bound.
        EXPECT_LE(e.vcmJ,
                  ht::vcmPowerW(cfg.disk.geometry.diameterInches) *
                          elapsed +
                      1e-9)
            << d;
        EXPECT_GT(e.totalJ(), 0.0);
    }
}

TEST(Integration, ShuffledTraceStillReplaysCorrectly)
{
    // Placement remapping must keep every request inside the disk and
    // complete a full replay.
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = 15000.0;
    hs::StorageSystem array(cfg);
    const std::int64_t space = array.logicalSectors();

    htr::WorkloadSpec spec;
    spec.requests = 3000;
    spec.zipfTheta = 1.0;
    spec.seed = 9;
    const auto tr = htr::SyntheticWorkload(spec).generate(space);
    const htr::ShuffleMap map(tr, space, 4096);
    const auto metrics = array.run(map.apply(tr).toRequests());
    EXPECT_EQ(metrics.count(), 3000u);
}

TEST(Integration, OpenmailTraceMatchesPublishedCharacter)
{
    // The Openmail generator was tuned to the paper's description: heavy
    // sequential runs yet most requests still move the arm.
    const auto s = hc::figure4Scenario("Openmail", 20000);
    const auto tr = s.makeTrace();
    const auto stats = htr::analyze(tr);
    EXPECT_NEAR(stats.readFraction, 0.40, 0.03);
    EXPECT_NEAR(stats.sequentialFraction, 0.50, 0.05);

    const hs::StorageSystem probe(s.system);
    const auto seeks =
        htr::analyzeSeeks(tr, probe.disk(0).addressMap());
    // Paper: >86% of requests move the arm; on the logical-volume view
    // (before striping interleaves streams further) the bulk still do.
    EXPECT_GT(seeks.armMovementFraction, 0.45);
    EXPECT_GT(seeks.meanSeekCylinders, 500.0);
}

TEST(Integration, GovernorCeilingMatchesSlackAnalysis)
{
    // The governor's sustainable-speed query at duty 0/1 must agree with
    // the slack analysis (both bisect the same thermal model, the
    // governor through its precomputed ladder).
    const hr::RoadmapEngine engine;
    const auto slack = hd::analyzeSlack(2.6, 1, engine);

    ht::DriveThermalConfig base;
    base.geometry.diameterInches = 2.6;
    base.rpm = 15000.0;
    std::vector<double> ladder;
    for (double rpm = 14000.0; rpm <= 27000.0; rpm += 500.0)
        ladder.push_back(rpm);
    const hd::SpeedGovernor gov(base, ladder);
    EXPECT_NEAR(gov.maxSustainableRpm(1.0), slack.envelopeRpm, 500.0);
    EXPECT_NEAR(gov.maxSustainableRpm(0.0), slack.slackRpm, 500.0);
}
