/**
 * @file
 * Failure-injection tests: degraded-mode RAID-1 and RAID-5 service.
 */
#include <gtest/gtest.h>

#include "sim/storage_system.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::SystemConfig
arrayConfig(int disks, hs::RaidLevel raid)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.tech = {400e3, 30e3};
    cfg.disk.rpm = 10000.0;
    cfg.disks = disks;
    cfg.raid = raid;
    return cfg;
}

hs::IoRequest
make(std::uint64_t id, double arrival, std::int64_t lba, int sectors,
     hs::IoType type = hs::IoType::Read)
{
    hs::IoRequest r;
    r.id = id;
    r.arrival = arrival;
    r.lba = lba;
    r.sectors = sectors;
    r.type = type;
    return r;
}

std::uint64_t
totalOps(const hs::StorageSystem& sys)
{
    std::uint64_t total = 0;
    for (int d = 0; d < sys.diskCount(); ++d)
        total += sys.disk(d).activity().completions;
    return total;
}

} // namespace

TEST(Degraded, Raid1FailoverServesReadsFromSurvivor)
{
    hs::StorageSystem sys(arrayConfig(2, hs::RaidLevel::Raid1));
    sys.failDisk(0);
    std::vector<hs::IoRequest> load;
    for (std::uint64_t i = 0; i < 20; ++i)
        load.push_back(
            make(i + 1, double(i) * 1e-3, std::int64_t(i) * 1000, 8));
    const auto metrics = sys.run(load);
    EXPECT_EQ(metrics.count(), 20u);
    EXPECT_EQ(sys.disk(0).activity().completions, 0u);
    EXPECT_EQ(sys.disk(1).activity().completions, 20u);
}

TEST(Degraded, Raid1WritesSkipFailedMirror)
{
    hs::StorageSystem sys(arrayConfig(3, hs::RaidLevel::Raid1));
    sys.failDisk(1);
    const auto metrics =
        sys.run({make(1, 0.0, 0, 8, hs::IoType::Write)});
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_EQ(sys.disk(0).activity().completions, 1u);
    EXPECT_EQ(sys.disk(1).activity().completions, 0u);
    EXPECT_EQ(sys.disk(2).activity().completions, 1u);
}

TEST(Degraded, Raid1FailedPreferredMirrorIsCleared)
{
    hs::StorageSystem sys(arrayConfig(2, hs::RaidLevel::Raid1));
    sys.setPreferredMirror(0);
    sys.failDisk(0);
    EXPECT_EQ(sys.preferredMirror(), -1);
    EXPECT_THROW(sys.setPreferredMirror(0), hu::ModelError);
    const auto metrics = sys.run({make(1, 0.0, 0, 8)});
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_EQ(sys.disk(1).activity().completions, 1u);
}

TEST(Degraded, Raid5ReadOnLostUnitReconstructs)
{
    // 4 disks: a unit read on the failed member expands to 3 surviving
    // reads (two data + parity).
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    // Unit 0 of row 0 lives on disk 0 (parity on disk 3).
    sys.failDisk(0);
    const auto metrics = sys.run({make(1, 0.0, 0, 16)});
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_EQ(totalOps(sys), 3u);
    EXPECT_EQ(sys.disk(0).activity().completions, 0u);
}

TEST(Degraded, Raid5ReadOnSurvivingUnitUnaffected)
{
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    sys.failDisk(0);
    // Unit 1 of row 0 lives on disk 1: a plain single read.
    const auto metrics = sys.run({make(1, 0.0, 16, 16)});
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_EQ(totalOps(sys), 1u);
}

TEST(Degraded, Raid5WriteOnLostUnitReconstructWrites)
{
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    sys.failDisk(0);
    // Writing the lost unit 0: read the row's other data units (disks 1
    // and 2), write the recomputed parity (disk 3) = 3 ops, no RMW on
    // the failed member.
    const auto metrics =
        sys.run({make(1, 0.0, 0, 16, hs::IoType::Write)});
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_EQ(totalOps(sys), 3u);
    EXPECT_EQ(sys.disk(0).activity().completions, 0u);
    EXPECT_EQ(sys.disk(3).activity().completions, 1u); // parity write
}

TEST(Degraded, Raid5WriteWithLostParityIsPlain)
{
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    // Row 0's parity lives on disk 3.
    sys.failDisk(3);
    const auto metrics =
        sys.run({make(1, 0.0, 0, 16, hs::IoType::Write)});
    EXPECT_EQ(metrics.count(), 1u);
    EXPECT_EQ(totalOps(sys), 1u); // one plain data write
    EXPECT_EQ(sys.disk(0).activity().completions, 1u);
}

TEST(Degraded, Raid5HealthyRowsKeepClassicRmw)
{
    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    sys.failDisk(0);
    // Row 1: parity on disk 2, data on {0,1,3} at units 3,4,5.  Unit 4
    // (lba 64) lives on disk... left-symmetric: positions after parity.
    // Write a unit on a surviving member of a degraded array but in a
    // row whose own members are intact except disk 0's unit: unit 4 is
    // healthy, but the row contains the lost disk-0 unit only if written.
    const auto metrics =
        sys.run({make(1, 0.0, 64, 16, hs::IoType::Write)});
    EXPECT_EQ(metrics.count(), 1u);
    // Classic RMW: read old data + parity, write data + parity = 4 ops.
    EXPECT_EQ(totalOps(sys), 4u);
}

TEST(Degraded, Raid5DegradedReadsCostMoreTime)
{
    auto run_one = [](bool degraded) {
        hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
        if (degraded)
            sys.failDisk(0);
        std::vector<hs::IoRequest> load;
        for (std::uint64_t i = 0; i < 50; ++i) {
            load.push_back(make(i + 1, double(i) * 5e-3,
                                std::int64_t(i) * 7919 % 100000 * 16,
                                16));
        }
        return sys.run(load).meanMs();
    };
    EXPECT_GT(run_one(true), run_one(false));
}

TEST(Degraded, FullWorkloadCompletesOnDegradedArray)
{
    hs::StorageSystem sys(arrayConfig(5, hs::RaidLevel::Raid5));
    sys.failDisk(2);
    std::vector<hs::IoRequest> load;
    for (std::uint64_t i = 0; i < 300; ++i) {
        load.push_back(make(i + 1, double(i) * 2e-3,
                            std::int64_t(i * 104729) % 1000000,
                            int(4 + (i % 5) * 8),
                            i % 3 ? hs::IoType::Read
                                  : hs::IoType::Write));
    }
    const auto metrics = sys.run(load);
    EXPECT_EQ(metrics.count(), 300u);
    EXPECT_EQ(sys.disk(2).activity().completions, 0u);
    EXPECT_EQ(sys.inflight(), 0u);
}

TEST(Degraded, RejectsInvalidInjection)
{
    hs::StorageSystem jbod(arrayConfig(2, hs::RaidLevel::None));
    EXPECT_THROW(jbod.failDisk(0), hu::ModelError);

    hs::StorageSystem r0(arrayConfig(2, hs::RaidLevel::Raid0));
    EXPECT_THROW(r0.failDisk(0), hu::ModelError);

    hs::StorageSystem sys(arrayConfig(4, hs::RaidLevel::Raid5));
    EXPECT_THROW(sys.failDisk(-1), hu::ModelError);
    EXPECT_THROW(sys.failDisk(4), hu::ModelError);
    sys.failDisk(1);
    EXPECT_EQ(sys.failedDisk(), 1);
    EXPECT_THROW(sys.failDisk(2), hu::ModelError); // second failure
}
