/**
 * @file
 * Unit tests for the generic thermal network and its solvers.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "thermal/network.h"
#include "util/error.h"

namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

namespace {

/// One node heated with Q, tied to an ambient boundary through G:
/// steady dT = Q / G, transient tau = C / G.
struct SingleNodeRig
{
    ht::ThermalNetwork net;
    ht::ThermalNetwork::NodeId ambient;
    ht::ThermalNetwork::NodeId body;

    SingleNodeRig(double c, double g, double q, double ambient_temp = 20.0)
    {
        ambient = net.addBoundaryNode("ambient", ambient_temp);
        body = net.addNode("body", c, ambient_temp);
        net.setConductance(body, ambient, g);
        net.setHeatInput(body, q);
    }
};

} // namespace

TEST(ThermalNetwork, SingleNodeSteadyState)
{
    SingleNodeRig rig(100.0, 2.0, 10.0);
    const auto temps = rig.net.steadyState();
    EXPECT_DOUBLE_EQ(temps[std::size_t(rig.ambient)], 20.0);
    EXPECT_NEAR(temps[std::size_t(rig.body)], 25.0, 1e-9);
}

TEST(ThermalNetwork, TransientApproachesSteadyExponentially)
{
    SingleNodeRig rig(100.0, 2.0, 10.0);
    const double tau = 100.0 / 2.0; // 50 s
    rig.net.advance(tau, 0.01);
    // After one time constant: 1 - e^-1 of the 5 K rise.
    const double expected = 20.0 + 5.0 * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(rig.net.temperature(rig.body), expected, 0.02);
}

TEST(ThermalNetwork, ImplicitStepStableWithTinyCapacitance)
{
    // A nearly massless node (like the drive's internal air) must not blow
    // up even with steps far larger than its own time constant.
    ht::ThermalNetwork net;
    const auto amb = net.addBoundaryNode("ambient", 25.0);
    const auto air = net.addNode("air", 0.1, 25.0);
    net.setConductance(air, amb, 2.0);
    net.setHeatInput(air, 4.0);
    net.advance(10.0, 0.5); // dt = 10x the node time constant
    EXPECT_NEAR(net.temperature(air), 27.0, 1e-6);
    EXPECT_TRUE(std::isfinite(net.temperature(air)));
}

TEST(ThermalNetwork, SettleMatchesSteadyState)
{
    SingleNodeRig rig(100.0, 2.0, 10.0);
    rig.net.settleToSteadyState();
    EXPECT_NEAR(rig.net.temperature(rig.body), 25.0, 1e-9);
}

TEST(ThermalNetwork, TwoNodeChainSteadyState)
{
    // ambient --G1-- a --G2-- b(Q): T_b = amb + Q/G1 + Q/G2.
    ht::ThermalNetwork net;
    const auto amb = net.addBoundaryNode("ambient", 10.0);
    const auto a = net.addNode("a", 50.0, 10.0);
    const auto b = net.addNode("b", 50.0, 10.0);
    net.setConductance(amb, a, 4.0);
    net.setConductance(a, b, 1.0);
    net.setHeatInput(b, 8.0);
    const auto temps = net.steadyState();
    EXPECT_NEAR(temps[std::size_t(a)], 12.0, 1e-9);
    EXPECT_NEAR(temps[std::size_t(b)], 20.0, 1e-9);
}

TEST(ThermalNetwork, EnergyConservationAtSteadyState)
{
    // Heat into the network equals heat crossing into the boundary.
    ht::ThermalNetwork net;
    const auto amb = net.addBoundaryNode("ambient", 0.0);
    const auto a = net.addNode("a", 10.0, 0.0);
    const auto b = net.addNode("b", 10.0, 0.0);
    net.setConductance(amb, a, 3.0);
    net.setConductance(a, b, 0.7);
    net.setHeatInput(a, 2.0);
    net.setHeatInput(b, 5.0);
    const auto temps = net.steadyState();
    const double flux_out = 3.0 * (temps[std::size_t(a)] - 0.0);
    EXPECT_NEAR(flux_out, 7.0, 1e-9);
}

TEST(ThermalNetwork, IsolatedNodeIsSingular)
{
    ht::ThermalNetwork net;
    net.addBoundaryNode("ambient", 0.0);
    net.addNode("stranded", 10.0, 0.0);
    EXPECT_THROW(net.steadyState(), hu::ModelError);
}

TEST(ThermalNetwork, SetConductanceOverwrites)
{
    SingleNodeRig rig(100.0, 2.0, 10.0);
    rig.net.setConductance(rig.body, rig.ambient, 5.0);
    EXPECT_DOUBLE_EQ(rig.net.conductance(rig.body, rig.ambient), 5.0);
    EXPECT_DOUBLE_EQ(rig.net.conductance(rig.ambient, rig.body), 5.0);
    const auto temps = rig.net.steadyState();
    EXPECT_NEAR(temps[std::size_t(rig.body)], 22.0, 1e-9);
}

TEST(ThermalNetwork, BoundaryTemperatureMoves)
{
    SingleNodeRig rig(100.0, 2.0, 10.0);
    rig.net.setTemperature(rig.ambient, 30.0);
    const auto temps = rig.net.steadyState();
    EXPECT_NEAR(temps[std::size_t(rig.body)], 35.0, 1e-9);
}

TEST(ThermalNetwork, HeatIntoBoundaryRejected)
{
    ht::ThermalNetwork net;
    const auto amb = net.addBoundaryNode("ambient", 0.0);
    EXPECT_THROW(net.setHeatInput(amb, 1.0), hu::ModelError);
}

TEST(ThermalNetwork, RejectsInvalidEdges)
{
    ht::ThermalNetwork net;
    const auto a = net.addNode("a", 1.0, 0.0);
    EXPECT_THROW(net.setConductance(a, a, 1.0), hu::ModelError);
    EXPECT_THROW(net.setConductance(a, 99, 1.0), hu::ModelError);
    EXPECT_THROW(net.setConductance(a, 0, -1.0), hu::ModelError);
}

TEST(ThermalNetwork, AdvanceObserverSeesMonotoneWarmup)
{
    SingleNodeRig rig(100.0, 2.0, 10.0);
    double prev = 20.0;
    int calls = 0;
    rig.net.advance(20.0, 0.1,
                    [&](double, const ht::ThermalNetwork& n) {
                        const double t = n.temperature(1);
                        EXPECT_GE(t, prev - 1e-12);
                        prev = t;
                        ++calls;
                    });
    EXPECT_EQ(calls, 200);
}

TEST(ThermalNetwork, SetAllTemperaturesSkipsBoundary)
{
    SingleNodeRig rig(100.0, 2.0, 10.0, 28.0);
    rig.net.settleToSteadyState();
    rig.net.setAllTemperatures(28.0);
    EXPECT_DOUBLE_EQ(rig.net.temperature(rig.body), 28.0);
    EXPECT_DOUBLE_EQ(rig.net.temperature(rig.ambient), 28.0);
}

/// Timestep-robustness property: the implicit integrator converges to the
/// same trajectory endpoint across a wide range of step sizes.
class TimestepSweep : public ::testing::TestWithParam<double>
{};

TEST_P(TimestepSweep, EndpointInsensitiveToStep)
{
    const double dt = GetParam();
    SingleNodeRig rig(100.0, 2.0, 10.0);
    rig.net.advance(200.0, dt);
    // Analytic: 20 + 5 (1 - e^{-200/50}) = 24.908...
    const double expected = 20.0 + 5.0 * (1.0 - std::exp(-4.0));
    EXPECT_NEAR(rig.net.temperature(rig.body), expected, 0.05 + dt * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Steps, TimestepSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0));
