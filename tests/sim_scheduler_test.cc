/**
 * @file
 * Unit tests for the request schedulers.
 */
#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "util/error.h"

namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::IoRequest
req(std::uint64_t id)
{
    hs::IoRequest r;
    r.id = id;
    return r;
}

} // namespace

TEST(Scheduler, FcfsPreservesArrivalOrder)
{
    hs::Scheduler s(hs::SchedulerPolicy::Fcfs);
    s.push(req(1), 900);
    s.push(req(2), 10);
    s.push(req(3), 500);
    EXPECT_EQ(s.pop(0).request.id, 1u);
    EXPECT_EQ(s.pop(0).request.id, 2u);
    EXPECT_EQ(s.pop(0).request.id, 3u);
    EXPECT_TRUE(s.empty());
}

TEST(Scheduler, SstfPicksNearestCylinder)
{
    hs::Scheduler s(hs::SchedulerPolicy::Sstf);
    s.push(req(1), 900);
    s.push(req(2), 10);
    s.push(req(3), 500);
    EXPECT_EQ(s.pop(480).request.id, 3u);
    EXPECT_EQ(s.pop(500).request.id, 1u);
    EXPECT_EQ(s.pop(900).request.id, 2u);
}

TEST(Scheduler, SstfBreaksTiesByArrival)
{
    hs::Scheduler s(hs::SchedulerPolicy::Sstf);
    s.push(req(1), 110);
    s.push(req(2), 90);
    EXPECT_EQ(s.pop(100).request.id, 1u); // equal distance, first wins
}

TEST(Scheduler, ElevatorSweepsUpThenDown)
{
    hs::Scheduler s(hs::SchedulerPolicy::Elevator);
    s.push(req(1), 300);
    s.push(req(2), 100);
    s.push(req(3), 200);
    // Head at 150 sweeping up: 200, 300, then reverse to 100.
    EXPECT_EQ(s.pop(150).request.id, 3u);
    EXPECT_EQ(s.pop(200).request.id, 1u);
    EXPECT_EQ(s.pop(300).request.id, 2u);
}

TEST(Scheduler, ElevatorServesEqualCylinder)
{
    hs::Scheduler s(hs::SchedulerPolicy::Elevator);
    s.push(req(1), 100);
    EXPECT_EQ(s.pop(100).request.id, 1u);
}

TEST(Scheduler, PopOnEmptyThrows)
{
    hs::Scheduler s(hs::SchedulerPolicy::Fcfs);
    EXPECT_THROW(s.pop(0), hu::ModelError);
}

TEST(Scheduler, PolicyNames)
{
    EXPECT_STREQ(hs::schedulerPolicyName(hs::SchedulerPolicy::Fcfs),
                 "FCFS");
    EXPECT_STREQ(hs::schedulerPolicyName(hs::SchedulerPolicy::Sstf),
                 "SSTF");
    EXPECT_STREQ(hs::schedulerPolicyName(hs::SchedulerPolicy::Elevator),
                 "ELEVATOR");
}

/// Property: every policy eventually serves every request exactly once.
class SchedulerPolicySweep
    : public ::testing::TestWithParam<hs::SchedulerPolicy>
{};

TEST_P(SchedulerPolicySweep, ServesAllExactlyOnce)
{
    hs::Scheduler s(GetParam());
    const int n = 200;
    for (int i = 0; i < n; ++i)
        s.push(req(std::uint64_t(i)), (i * 7919) % 10000);
    std::vector<bool> seen(n, false);
    int head = 0;
    for (int i = 0; i < n; ++i) {
        const auto e = s.pop(head);
        head = e.cylinder;
        ASSERT_LT(e.request.id, std::uint64_t(n));
        EXPECT_FALSE(seen[std::size_t(e.request.id)]);
        seen[std::size_t(e.request.id)] = true;
    }
    EXPECT_TRUE(s.empty());
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerPolicySweep,
                         ::testing::Values(hs::SchedulerPolicy::Fcfs,
                                           hs::SchedulerPolicy::Sstf,
                                           hs::SchedulerPolicy::Elevator));
