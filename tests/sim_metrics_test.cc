/**
 * @file
 * Edge-case tests of sim::ResponseMetrics: merging an empty accumulator
 * in either direction is the identity, and self-merge doubles the mass
 * without corrupting the moments (alias safety).
 */
#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "sim/metrics.h"

namespace hs = hddtherm::sim;

namespace {

hs::IoCompletion
completed(double arrival, double finish)
{
    hs::IoCompletion c;
    c.arrival = arrival;
    c.finish = finish;
    return c;
}

} // namespace

TEST(ResponseMetrics, StartsEmpty)
{
    const hs::ResponseMetrics m;
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.meanMs(), 0.0);
    EXPECT_EQ(m.histogram().count(), 0u);
}

TEST(ResponseMetrics, MergeWithEmptyIsIdentity)
{
    hs::ResponseMetrics filled;
    filled.record(completed(0.0, 0.010)); // 10 ms
    filled.record(completed(0.0, 0.030)); // 30 ms
    const double mean = filled.meanMs();
    const double var = filled.stats().variance();

    // Empty into filled: nothing changes.
    filled.merge(hs::ResponseMetrics());
    EXPECT_EQ(filled.count(), 2u);
    EXPECT_EQ(filled.meanMs(), mean);
    EXPECT_EQ(filled.stats().variance(), var);

    // Filled into empty: the empty side becomes a copy.
    hs::ResponseMetrics empty;
    empty.merge(filled);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.meanMs(), mean);
    EXPECT_EQ(empty.stats().variance(), var);
    for (std::size_t i = 0; i <= filled.histogram().bins(); ++i)
        EXPECT_EQ(empty.histogram().binCount(i),
                  filled.histogram().binCount(i));
}

TEST(ResponseMetrics, EmptySelfMergeStaysEmpty)
{
    hs::ResponseMetrics m;
    m.merge(m);
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.meanMs(), 0.0);
}

TEST(ResponseMetrics, SelfMergeDoublesMassKeepsMoments)
{
    hs::ResponseMetrics m;
    m.record(completed(0.0, 0.010));
    m.record(completed(0.0, 0.030));
    const double mean = m.meanMs();
    const double var = m.stats().variance();
    const std::uint64_t bin0 = m.histogram().binCount(1);

    m.merge(m);

    EXPECT_EQ(m.count(), 4u);
    EXPECT_DOUBLE_EQ(m.meanMs(), mean);
    // Duplicating every sample preserves the population variance.
    EXPECT_NEAR(m.stats().variance(), var, 1e-9);
    EXPECT_EQ(m.histogram().binCount(1), 2 * bin0);
    EXPECT_EQ(m.histogram().count(), 4u);
}
