/**
 * @file
 * Tests of the multi-speed governor and the mirrored-disk DTM
 * (paper §5.2 dynamic form and §5.4).
 */
#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "dtm/governor.h"
#include "dtm/mirror.h"
#include "util/error.h"

namespace hd = hddtherm::dtm;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

namespace {

ht::DriveThermalConfig
base26()
{
    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.geometry.platters = 1;
    cfg.rpm = 15000.0;
    return cfg;
}

const std::vector<double> kLadder = {15020.0, 18000.0, 21000.0, 24534.0,
                                     26000.0};

} // namespace

TEST(Governor, LadderSortedAndQueried)
{
    hd::SpeedGovernor gov(base26(), {24534.0, 15020.0, 21000.0});
    EXPECT_EQ(gov.levels(), 3);
    EXPECT_DOUBLE_EQ(gov.rpmAt(0), 15020.0);
    EXPECT_DOUBLE_EQ(gov.rpmAt(2), 24534.0);
}

TEST(Governor, PredictionsLinearInDuty)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    const double t0 = gov.predictedSteadyC(3, 0.0);
    const double t1 = gov.predictedSteadyC(3, 1.0);
    const double th = gov.predictedSteadyC(3, 0.5);
    EXPECT_NEAR(th, 0.5 * (t0 + t1), 1e-9);
    EXPECT_GT(t1, t0);
}

TEST(Governor, FullDutyForcesEnvelopeSpeed)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    // At 100% duty only the envelope-design speed is sustainable.
    EXPECT_DOUBLE_EQ(gov.maxSustainableRpm(1.0), 15020.0);
}

TEST(Governor, IdleDutyUnlocksTheSlackSpeed)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    // VCM off: the §5.2 slack (up to ~26.1K RPM here) becomes available.
    EXPECT_DOUBLE_EQ(gov.maxSustainableRpm(0.0), 26000.0);
}

TEST(Governor, SpeedsBeyondTheSlackStayLocked)
{
    // A rung above the VCM-off ceiling (~26.1K RPM) is never sustainable.
    hd::SpeedGovernor gov(base26(), {15020.0, 27000.0});
    EXPECT_DOUBLE_EQ(gov.maxSustainableRpm(0.0), 15020.0);
}

TEST(Governor, UpStepJumpsArePositiveBelowTop)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    for (int i = 0; i + 1 < gov.levels(); ++i) {
        EXPECT_GT(gov.upStepJumpC(i), 0.0) << i;
        EXPECT_LT(gov.upStepJumpC(i), 3.0) << i;
    }
    EXPECT_DOUBLE_EQ(gov.upStepJumpC(gov.levels() - 1), 0.0);
}

TEST(Governor, HigherRungsJumpFurtherAtSimilarSpacing)
{
    // The windage jump grows superlinearly with speed: at comparable rung
    // spacing (~3K RPM) the 21000->24534 step jumps further than the
    // 15020->18000 step.
    hd::SpeedGovernor gov(base26(), kLadder);
    EXPECT_GT(gov.upStepJumpC(2), gov.upStepJumpC(0));
}

TEST(Governor, RefusesUpStepWithoutJumpHeadroom)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    // Measured temperature so close to the envelope that the next rung's
    // fast jump would overshoot: must hold (or drop), never climb.
    const double decision =
        gov.decide(21000.0, ht::kThermalEnvelopeC - 0.05, 0.1);
    EXPECT_LE(decision, 21000.0);
}

TEST(Governor, SustainableSpeedMonotoneInDuty)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    double prev = 1e9;
    for (double duty = 0.0; duty <= 1.0; duty += 0.1) {
        const double rpm = gov.maxSustainableRpm(duty);
        EXPECT_LE(rpm, prev);
        prev = rpm;
    }
}

TEST(Governor, EmergencyStepsDown)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    const double decision =
        gov.decide(24534.0, ht::kThermalEnvelopeC, 0.0);
    EXPECT_LT(decision, 24534.0);
}

TEST(Governor, HoldsWhenPredictedSafe)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    const double decision = gov.decide(21000.0, 44.0, 0.2);
    EXPECT_GE(decision, 21000.0);
}

TEST(Governor, StepsUpWithSlack)
{
    hd::SpeedGovernor gov(base26(), kLadder);
    const double decision = gov.decide(15020.0, 43.0, 0.0);
    EXPECT_GT(decision, 15020.0);
}

TEST(Governor, RejectsUnsafeLadder)
{
    // A ladder whose lowest rung already violates the envelope at full
    // duty is rejected outright.
    EXPECT_THROW({ hd::SpeedGovernor gov(base26(), {24534.0, 26000.0}); },
                 hu::ModelError);
    EXPECT_THROW({ hd::SpeedGovernor gov(base26(), {}); }, hu::ModelError);
}

namespace {

hs::SystemConfig
mirrorSystem(double rpm)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = rpm;
    cfg.disks = 2;
    cfg.raid = hs::RaidLevel::Raid1;
    return cfg;
}

std::vector<hs::IoRequest>
readWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 104729 * 256) % (space - 64);
        r.sectors = 8;
        out.push_back(r);
    }
    return out;
}

} // namespace

TEST(MirrorDtm, RunsAndCompletes)
{
    hd::MirrorDtmConfig cfg;
    cfg.system = mirrorSystem(15020.0);
    hd::MirrorDtmSimulation sim(cfg);
    const auto space =
        hs::StorageSystem(cfg.system).logicalSectors();
    const auto result = sim.run(readWorkload(400, space, 100.0));
    EXPECT_EQ(result.metrics.count(), 400u);
    ASSERT_EQ(result.maxTempC.size(), 2u);
    EXPECT_GT(result.maxTempC[0], 0.0);
}

TEST(MirrorDtm, ThermalSteeringAlternatesMirrors)
{
    hd::MirrorDtmConfig cfg;
    cfg.system = mirrorSystem(20000.0);
    cfg.policy = hd::MirrorPolicy::ThermalSteer;
    hd::MirrorDtmSimulation sim(cfg);
    const auto space =
        hs::StorageSystem(cfg.system).logicalSectors();
    const auto result = sim.run(readWorkload(2000, space, 120.0));
    EXPECT_GT(result.swaps, 0u);
    // Both members end up doing some of the read work.
    EXPECT_GT(result.meanDuty[0], 0.0);
    EXPECT_GT(result.meanDuty[1], 0.0);
}

TEST(MirrorDtm, SteeringReducesPeakTemperatureVsPinned)
{
    // Pin all reads on member 0 by disabling steering and preferring it:
    // compare peak per-member temperature against thermal steering at a
    // speed above the single-member sustainable point.
    const auto space =
        hs::StorageSystem(mirrorSystem(20000.0)).logicalSectors();
    const auto workload = readWorkload(3000, space, 140.0);

    hd::MirrorDtmConfig steer;
    steer.system = mirrorSystem(20000.0);
    steer.policy = hd::MirrorPolicy::ThermalSteer;
    const auto steered = hd::MirrorDtmSimulation(steer).run(workload);

    hd::MirrorDtmConfig balanced;
    balanced.system = mirrorSystem(20000.0);
    balanced.policy = hd::MirrorPolicy::Balanced;
    const auto base = hd::MirrorDtmSimulation(balanced).run(workload);

    const double steer_peak =
        std::max(steered.maxTempC[0], steered.maxTempC[1]);
    const double base_peak = std::max(base.maxTempC[0], base.maxTempC[1]);
    // Thermal steering never does worse than balanced on the peak.
    EXPECT_LE(steer_peak, base_peak + 0.05);
}

TEST(MirrorDtm, RequiresRaid1)
{
    hd::MirrorDtmConfig cfg;
    cfg.system = mirrorSystem(15000.0);
    cfg.system.raid = hs::RaidLevel::None;
    EXPECT_THROW({ hd::MirrorDtmSimulation sim(cfg); }, hu::ModelError);
}

TEST(MirrorDtm, PolicyNames)
{
    EXPECT_STREQ(hd::mirrorPolicyName(hd::MirrorPolicy::Balanced),
                 "balanced");
    EXPECT_STREQ(hd::mirrorPolicyName(hd::MirrorPolicy::ThermalSteer),
                 "thermal-steer");
}

TEST(CoSimGovernor, GovernedRunCompletesWithinEnvelope)
{
    hd::CoSimConfig cfg;
    cfg.system = mirrorSystem(15020.0);
    cfg.system.raid = hs::RaidLevel::None;
    cfg.system.disks = 1;
    cfg.system.disk.rpmChangeSecPerKrpm = 0.02;
    cfg.policy = hd::DtmPolicy::GovernSpeed;
    cfg.rpmLadder = kLadder;
    hd::CoSimulation cosim(cfg);
    const auto space =
        hs::StorageSystem(cfg.system).logicalSectors();
    const auto result = cosim.run(readWorkload(800, space, 30.0));
    EXPECT_EQ(result.metrics.count(), 800u);
    EXPECT_LE(result.maxTempC, ht::kThermalEnvelopeC + 0.15);
}

TEST(CoSimGovernor, LadderRequired)
{
    hd::CoSimConfig cfg;
    cfg.system = mirrorSystem(15020.0);
    cfg.system.raid = hs::RaidLevel::None;
    cfg.system.disks = 1;
    cfg.policy = hd::DtmPolicy::GovernSpeed;
    EXPECT_THROW({ hd::CoSimulation c(cfg); }, hu::ModelError);
}
