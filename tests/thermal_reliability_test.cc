/**
 * @file
 * Tests of the temperature-reliability scaling and its DTM tie-in.
 */
#include <gtest/gtest.h>

#include "thermal/drive_thermal.h"
#include "thermal/reliability.h"
#include "util/error.h"

namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

TEST(Reliability, UnityAtReference)
{
    EXPECT_DOUBLE_EQ(ht::failureRateFactor(28.0, 28.0), 1.0);
    EXPECT_DOUBLE_EQ(ht::mttfFactor(28.0, 28.0), 1.0);
}

TEST(Reliability, FifteenDegreesDoubles)
{
    // The paper's motivating citation: +15 C doubles the failure rate.
    EXPECT_DOUBLE_EQ(ht::failureRateFactor(43.0, 28.0), 2.0);
    EXPECT_DOUBLE_EQ(ht::failureRateFactor(58.0, 28.0), 4.0);
    EXPECT_DOUBLE_EQ(ht::mttfFactor(43.0, 28.0), 0.5);
}

TEST(Reliability, CoolerBuysCredit)
{
    EXPECT_DOUBLE_EQ(ht::failureRateFactor(13.0, 28.0), 0.5);
    EXPECT_GT(ht::mttfFactor(20.0, 28.0), 1.0);
}

TEST(Reliability, MonotoneInTemperature)
{
    double prev = 0.0;
    for (double t = 20.0; t <= 100.0; t += 5.0) {
        const double f = ht::failureRateFactor(t);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(Reliability, AfrScalesFromBase)
{
    // A 2%-AFR drive run 15 C hotter becomes a 4%-AFR drive.
    EXPECT_NEAR(ht::annualizedFailureRate(43.0, 0.02, 28.0), 0.04, 1e-12);
    EXPECT_THROW(ht::annualizedFailureRate(40.0, -0.01), hu::ModelError);
}

TEST(Reliability, EnvelopeOperationCostsAboutTwoPointTwo)
{
    // Running pinned at the 45.22 C envelope vs the 28 C ambient is a
    // ~2.2x failure-rate multiplier — the margin DTM can claw back by
    // cooling the average operating point.
    const double factor =
        ht::failureRateFactor(ht::kThermalEnvelopeC, 28.0);
    EXPECT_GT(factor, 2.1);
    EXPECT_LT(factor, 2.4);
}

TEST(Reliability, DtmCoolingImprovesMttf)
{
    // The paper's closing remark quantified: the same drive at the same
    // speed, idle-VCM (DTM-throttled) vs flat out.
    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.rpm = 15020.0;
    cfg.vcmDuty = 1.0;
    const double hot = ht::steadyAirTempC(cfg);
    cfg.vcmDuty = 0.25;
    const double cool = ht::steadyAirTempC(cfg);
    EXPECT_GT(ht::mttfFactor(cool) / ht::mttfFactor(hot), 1.1);
}
