/**
 * @file
 * Tests of idle-gap recording and the spin-down policy evaluator.
 */
#include <gtest/gtest.h>

#include "dtm/spindown.h"
#include "sim/disk.h"
#include "util/error.h"

namespace hd = hddtherm::dtm;
namespace hh = hddtherm::hdd;
namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hh::PlatterGeometry
geom26()
{
    hh::PlatterGeometry g;
    g.diameterInches = 2.6;
    return g;
}

} // namespace

TEST(IdleGaps, RecordedOnlyWhenEnabled)
{
    hs::EventQueue events;
    hs::DiskConfig cfg;
    cfg.tech = {400e3, 30e3};
    cfg.recordIdleGaps = false;
    hs::SimDisk off(events, cfg);
    cfg.recordIdleGaps = true;
    hs::SimDisk on(events, cfg, 1);

    auto submit_two = [&events](hs::SimDisk& disk) {
        hs::IoRequest r;
        r.id = 1;
        r.arrival = events.now();
        r.lba = 0;
        r.sectors = 8;
        disk.submit(r);
        events.runAll();
        events.schedule(events.now() + 0.5, [] {});
        events.runAll();
        r.id = 2;
        r.lba = 100000;
        disk.submit(r);
        events.runAll();
    };
    submit_two(off);
    submit_two(on);
    EXPECT_TRUE(off.idleGaps().empty());
    // Two gaps: the start-up idle (t=0 until the first dispatch on the
    // shared clock) and the 0.5 s injected between the requests.
    ASSERT_EQ(on.idleGaps().size(), 2u);
    EXPECT_NEAR(on.idleGaps().back(), 0.5, 1e-9);
}

TEST(Spindown, NoGapLongEnoughMeansNoAction)
{
    const std::vector<double> gaps = {0.1, 0.5, 2.0};
    hd::SpindownParams params;
    params.timeoutSec = 10.0;
    const auto r = hd::evaluateSpindown(gaps, geom26(), 10000.0, params);
    EXPECT_EQ(r.spinDowns, 0u);
    EXPECT_DOUBLE_EQ(r.savedFraction(), 0.0);
    EXPECT_DOUBLE_EQ(r.addedLatencySec, 0.0);
    EXPECT_DOUBLE_EQ(r.policyEnergyJ, r.idleEnergyJ);
}

TEST(Spindown, LongGapsSaveEnergyButStallRequests)
{
    const std::vector<double> gaps(10, 300.0); // five-minute think times
    hd::SpindownParams params;
    params.timeoutSec = 10.0;
    const auto r = hd::evaluateSpindown(gaps, geom26(), 10000.0, params);
    EXPECT_EQ(r.spinDowns, 10u);
    EXPECT_GT(r.savedFraction(), 0.5);
    EXPECT_NEAR(r.addedLatencySec, 10.0 * params.spinUpSec, 1e-9);
    EXPECT_NEAR(r.meanStallSec(), params.spinUpSec, 1e-9);
}

TEST(Spindown, BorderlineGapsCanCostEnergy)
{
    // Gaps barely past the threshold: the spin-up energy dominates.
    hd::SpindownParams params;
    params.timeoutSec = 10.0;
    const std::vector<double> gaps(20, params.timeoutSec +
                                           params.spinDownSec + 1.0);
    const auto r = hd::evaluateSpindown(gaps, geom26(), 10000.0, params);
    EXPECT_EQ(r.spinDowns, 20u);
    EXPECT_LT(r.savedFraction(), 0.0);
}

TEST(Spindown, IdleEnergyUsesSpinningPower)
{
    // 100 s of idle at 2.6"/15098 RPM: SPM (~10.2 W) + windage (0.91 W).
    const std::vector<double> gaps = {100.0};
    const auto r = hd::evaluateSpindown(gaps, geom26(), 15098.0,
                                        hd::SpindownParams{});
    EXPECT_NEAR(r.idleEnergyJ, (10.2 + 0.91) * 100.0, 3.0);
}

TEST(Spindown, HigherRpmRaisesTheStakes)
{
    const std::vector<double> gaps(5, 120.0);
    const auto slow = hd::evaluateSpindown(gaps, geom26(), 7200.0);
    const auto fast = hd::evaluateSpindown(gaps, geom26(), 20000.0);
    EXPECT_GT(fast.idleEnergyJ, slow.idleEnergyJ);
    // Same absolute overheads, bigger spinning power: larger fraction
    // saved at high RPM.
    EXPECT_GT(fast.savedFraction(), slow.savedFraction());
}

TEST(Spindown, RejectsBadInput)
{
    hd::SpindownParams params;
    params.timeoutSec = -1.0;
    EXPECT_THROW(hd::evaluateSpindown({1.0}, geom26(), 10000.0, params),
                 hu::ModelError);
    EXPECT_THROW(hd::evaluateSpindown({-1.0}, geom26(), 10000.0),
                 hu::ModelError);
}

TEST(Spindown, EmptyGapsAreSafe)
{
    const auto r = hd::evaluateSpindown({}, geom26(), 10000.0);
    EXPECT_EQ(r.idleGaps, 0u);
    EXPECT_DOUBLE_EQ(r.savedFraction(), 0.0);
    EXPECT_DOUBLE_EQ(r.meanStallSec(), 0.0);
}
