/**
 * @file
 * Concurrency tests of the metrics layer: many threads hammering one
 * registry must lose nothing (counters, histogram bins, and the gauge
 * high watermark are exact), and metrics recorded from inside
 * fleet::ShardExecutor worker threads must add up exactly, steals and
 * all.
 */
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/shard_executor.h"
#include "obs/metrics.h"

namespace hf = hddtherm::fleet;
namespace ho = hddtherm::obs;

namespace {

class ObsConcurrencyTest : public ::testing::Test
{
  protected:
    void SetUp() override { ho::setEnabled(false); }
    void TearDown() override { ho::setEnabled(false); }
};

} // namespace

TEST_F(ObsConcurrencyTest, CountersAreExactUnderContention)
{
    ho::MetricsRegistry reg;
    ho::Counter& hot = reg.counter("hot");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kIters = 50'000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, &hot, t]() {
            // Each thread also races registration of a shared name and a
            // private name, interleaved with hot-path increments.
            ho::Counter& mine =
                reg.counter("private." + std::to_string(t));
            for (std::uint64_t i = 0; i < kIters; ++i) {
                hot.add(1);
                mine.add(2);
                reg.counter("shared").add(1);
            }
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(hot.value(), kThreads * kIters);
    EXPECT_EQ(reg.counter("shared").value(), kThreads * kIters);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(reg.counter("private." + std::to_string(t)).value(),
                  2 * kIters);
    EXPECT_EQ(reg.size(), std::size_t(kThreads) + 2);
}

TEST_F(ObsConcurrencyTest, HistogramBinsAndGaugeMaxAreExact)
{
    ho::MetricsRegistry reg;
    ho::HistogramMetric& h = reg.histogram("lat", {1.0, 2.0, 3.0});
    ho::Gauge& g = reg.gauge("level");
    constexpr int kThreads = 8;
    constexpr int kIters = 20'000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, &g, t]() {
            for (int i = 0; i < kIters; ++i) {
                h.observe(double(i % 4) + 0.5); // bins 0..2 + overflow
                g.raiseMax(double(t * kIters + i));
            }
        });
    }
    for (auto& t : threads)
        t.join();

    const std::uint64_t per_bin = std::uint64_t(kThreads) * kIters / 4;
    for (std::size_t b = 0; b < 4; ++b)
        EXPECT_EQ(h.binCount(b), per_bin) << "bin " << b;
    EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kIters);
    // Sum is exact in micro-units: each thread contributes the same
    // arithmetic series.
    const double per_thread = kIters / 4.0 * (0.5 + 1.5 + 2.5 + 3.5);
    EXPECT_DOUBLE_EQ(h.sum(), kThreads * per_thread);
    EXPECT_EQ(g.max(), double(kThreads * kIters - 1));
}

TEST_F(ObsConcurrencyTest, ShardExecutorWorkersRecordExactly)
{
    ho::setEnabled(true);
    auto& global = ho::MetricsRegistry::global();
    const std::uint64_t tasks_before =
        global.counter("fleet.executor.tasks").value();
    const std::uint64_t batches_before =
        global.counter("fleet.executor.batches").value();

    ho::MetricsRegistry reg;
    ho::Counter& done = reg.counter("tasks.done");
    ho::HistogramMetric& weights = reg.histogram("tasks.weight",
                                                 {10.0, 100.0});

    constexpr int kBatches = 5;
    constexpr int kTasksPerBatch = 64;
    hf::ShardExecutor exec(4);
    for (int b = 0; b < kBatches; ++b) {
        std::vector<hf::ShardExecutor::Task> batch;
        batch.reserve(kTasksPerBatch);
        for (int i = 0; i < kTasksPerBatch; ++i) {
            batch.emplace_back([&done, &weights, i]() {
                done.add(1);
                weights.observe(double(i));
            });
        }
        exec.runBatch(std::move(batch));
    }

    EXPECT_EQ(done.value(), std::uint64_t(kBatches) * kTasksPerBatch);
    EXPECT_EQ(weights.count(), std::uint64_t(kBatches) * kTasksPerBatch);

    // The executor's own instrumentation agrees with its Stats struct
    // and with the ground truth.
    const auto stats = exec.stats();
    EXPECT_EQ(stats.tasks, std::uint64_t(kBatches) * kTasksPerBatch);
    EXPECT_EQ(stats.batches, std::uint64_t(kBatches));
    EXPECT_EQ(global.counter("fleet.executor.tasks").value() -
                  tasks_before,
              std::uint64_t(kBatches) * kTasksPerBatch);
    EXPECT_EQ(global.counter("fleet.executor.batches").value() -
                  batches_before,
              std::uint64_t(kBatches));
    // Worker wall time flowed into the shared histogram.
    EXPECT_GE(global
                  .histogram("fleet.executor.task_ms",
                             ho::defaultLatencyEdgesMs())
                  .count(),
              std::uint64_t(kBatches) * kTasksPerBatch);
}

TEST_F(ObsConcurrencyTest, InlineExecutorMatchesThreadedCounts)
{
    ho::setEnabled(true);
    auto& tasks = ho::MetricsRegistry::global().counter(
        "fleet.executor.tasks");
    auto& steals = ho::MetricsRegistry::global().counter(
        "fleet.executor.steals");

    const auto run = [](int threads) {
        hf::ShardExecutor exec(threads);
        std::atomic<int> hits{0};
        std::vector<hf::ShardExecutor::Task> batch;
        for (int i = 0; i < 32; ++i)
            batch.emplace_back([&hits]() { ++hits; });
        exec.runBatch(std::move(batch));
        return hits.load();
    };

    const std::uint64_t t0 = tasks.value();
    EXPECT_EQ(run(1), 32);
    EXPECT_EQ(tasks.value() - t0, 32u);

    const std::uint64_t t1 = tasks.value();
    const std::uint64_t s1 = steals.value();
    EXPECT_EQ(run(3), 32);
    EXPECT_EQ(tasks.value() - t1, 32u);
    // Steal accounting is workload-dependent but never exceeds the
    // batch and matches the executor's own tally by construction.
    EXPECT_LE(steals.value() - s1, 32u);
}
