/**
 * @file
 * Golden-value regression layer for the paper's validation tables.
 *
 * Table 1 (thirteen 1999-2002 SCSI drives) pins the capacity and internal
 * data rate the zoned-recording model computes for every catalog drive;
 * Table 2 pins the steady-state air temperature at each drive's rated
 * wet-bulb point.  The values were generated from this source tree and are
 * intentionally pinned far tighter than the paper's validation tolerances:
 * they exist to catch *unintentional* drift in the models, not to restate
 * the datasheet comparison (bench_table1_validation does that).
 *
 * Re-blessing: if a deliberate model change moves these numbers, re-run
 * the computation at full precision (see docs/faults.md, "Golden values")
 * and update the tables in one commit with the model change.
 */
#include <gtest/gtest.h>

#include "hdd/capacity.h"
#include "hdd/drive_catalog.h"
#include "thermal/envelope.h"

namespace hh = hddtherm::hdd;
namespace ht = hddtherm::thermal;

namespace {

/// Everything downstream of the zone model is pure arithmetic, so the
/// goldens hold to ~1e-12 relative on one toolchain; the tolerance only
/// allows for libm (pow/exp) variation across compilers.
constexpr double kTol = 1e-6;

struct Table1Golden
{
    const char* model;
    double userGB;
    double idrMBps;
};

// Generated from hdd::computeCapacity(d.layout()).userGB and
// hdd::internalDataRateMBps(d.layout(), d.rpm) at nzones = 30.
constexpr Table1Golden kTable1[] = {
    {"Quantum Atlas 10K", 18.855892992000001, 46.38671875},
    {"IBM Ultrastar 36LZX", 32.976328703999997, 57.942708333333329},
    {"Seagate Cheetah X15", 21.513077760000002, 73.3642578125},
    {"Quantum Atlas 10K II", 13.72626432, 61.767578125},
    {"IBM Ultrastar 36Z15", 37.708369920000003, 84.9609375},
    {"IBM Ultrastar 73LZX", 37.151545343999999, 86.9140625},
    {"Seagate Barracuda 180", 217.94328576000001, 71.66015625},
    {"Fujitsu AL-7LX", 39.846912000000003, 99.9755859375},
    {"Seagate Cheetah X15-36LP", 42.969325568000002, 103.1494140625},
    {"Seagate Cheetah 73LP", 69.651021823999997, 87.809244791666657},
    {"Fujitsu AL-7LE", 72.402862080000006, 87.809244791666657},
    {"Seagate Cheetah 10K.6", 137.85833471999999, 103.19010416666666},
    {"Seagate Cheetah 15K.3", 80.022581247999995, 114.1357421875},
};

struct Table2Golden
{
    const char* model;
    double steadyAirC;
};

// Generated from thermal::steadyAirTempC at each drive's rated wet-bulb
// ambient with the platter-count cooling scale (bench_table2_envelope).
constexpr Table2Golden kTable2[] = {
    {"IBM Ultrastar 36LZX", 45.826896065405535},
    {"Seagate Cheetah X15", 45.205479490673525},
    {"IBM Ultrastar 36Z15", 46.603413035284653},
    {"Seagate Barracuda 180", 45.224725059571774},
};

} // namespace

TEST(GoldenTables, Table1CapacityAndIdr)
{
    const auto& drives = hh::table1Drives();
    ASSERT_EQ(drives.size(), std::size(kTable1));
    for (std::size_t i = 0; i < drives.size(); ++i) {
        const auto& d = drives[i];
        const auto& golden = kTable1[i];
        ASSERT_EQ(d.model, golden.model) << "catalog order changed";
        const auto layout = d.layout();
        EXPECT_NEAR(hh::computeCapacity(layout).userGB, golden.userGB,
                    kTol)
            << d.model;
        EXPECT_NEAR(hh::internalDataRateMBps(layout, d.rpm),
                    golden.idrMBps, kTol)
            << d.model;
    }
}

TEST(GoldenTables, Table2EnvelopeSteadyStates)
{
    const auto& ratings = hh::table2Ratings();
    ASSERT_EQ(ratings.size(), std::size(kTable2));
    for (std::size_t i = 0; i < ratings.size(); ++i) {
        const auto& rating = ratings[i];
        const auto& golden = kTable2[i];
        ASSERT_EQ(rating.model, golden.model) << "catalog order changed";
        const auto drive = hh::findDrive(rating.model);
        ASSERT_TRUE(drive.has_value()) << rating.model;
        ht::DriveThermalConfig cfg;
        cfg.geometry = drive->geometry();
        cfg.rpm = rating.rpm;
        cfg.ambientC = rating.wetBulbTempC;
        cfg.coolingScale =
            ht::coolingScaleForPlatters(cfg.geometry.platters);
        EXPECT_NEAR(ht::steadyAirTempC(cfg), golden.steadyAirC, kTol)
            << rating.model;
    }
}

TEST(GoldenTables, CalibrationAnchorsHold)
{
    // The paper's §3.3 anchors: the Cheetah X15 models to ~45.2 °C at its
    // rated point, which plus ~10 °C of electronics matches the 55 °C
    // rated envelope; the repo's envelope constant encodes that anchor.
    EXPECT_NEAR(ht::kThermalEnvelopeC, 45.22, 1e-9);
    EXPECT_NEAR(ht::kBaselineAmbientC, 28.0, 1e-9);
    EXPECT_NEAR(kTable2[1].steadyAirC, ht::kThermalEnvelopeC, 0.05);
}
