/**
 * @file
 * Tests of the fault-injection layer: schedules, the drive-level player,
 * the thermal-model fault hooks, and the co-simulation fail-safe path.
 */
#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "fault/emergency.h"
#include "fault/fault_player.h"
#include "fault/fault_schedule.h"
#include "thermal/drive_thermal.h"
#include "thermal/envelope.h"
#include "util/error.h"

namespace hd = hddtherm::dtm;
namespace hf = hddtherm::fault;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

namespace {

hf::FaultEvent
event(double at, hf::FaultKind kind, double value = 0.0,
      double duration = 0.0, int target = -1)
{
    hf::FaultEvent e;
    e.timeSec = at;
    e.kind = kind;
    e.value = value;
    e.durationSec = duration;
    e.target = target;
    return e;
}

hs::SystemConfig
smallSystem(double rpm)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = rpm;
    cfg.disk.rpmChangeSecPerKrpm = 0.02;
    cfg.disks = 1;
    return cfg;
}

std::vector<hs::IoRequest>
randomWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        out.push_back(r);
    }
    return out;
}

std::int64_t
diskSpace(const hs::SystemConfig& cfg)
{
    return hs::StorageSystem(cfg).logicalSectors();
}

ht::DriveThermalConfig
thermalConfig()
{
    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.geometry.platters = 1;
    cfg.rpm = 15020.0;
    cfg.vcmDuty = 1.0;
    cfg.coolingScale = ht::coolingScaleForPlatters(cfg.geometry.platters);
    return cfg;
}

} // namespace

TEST(FaultSchedule, KindNamesMatchConfigSpelling)
{
    EXPECT_STREQ(hf::faultKindName(hf::FaultKind::AirflowDegrade),
                 "airflow_degrade");
    EXPECT_STREQ(hf::faultKindName(hf::FaultKind::AmbientStep),
                 "ambient_step");
    EXPECT_STREQ(hf::faultKindName(hf::FaultKind::AmbientSpike),
                 "ambient_spike");
    EXPECT_STREQ(hf::faultKindName(hf::FaultKind::SensorStuck),
                 "sensor_stuck");
    EXPECT_STREQ(hf::faultKindName(hf::FaultKind::SensorDropout),
                 "sensor_dropout");
    EXPECT_STREQ(hf::faultKindName(hf::FaultKind::SensorNoise),
                 "sensor_noise");
    EXPECT_STREQ(hf::faultKindName(hf::FaultKind::BayKill), "bay_kill");
    EXPECT_STREQ(hf::faultKindName(hf::FaultKind::BayRestore),
                 "bay_restore");
}

TEST(FaultSchedule, EventsKeptInOnsetOrder)
{
    hf::FaultSchedule schedule;
    schedule.add(event(30.0, hf::FaultKind::AmbientStep, 2.0));
    schedule.add(event(10.0, hf::FaultKind::AmbientStep, 1.0));
    schedule.add(event(20.0, hf::FaultKind::AmbientStep, 4.0));
    ASSERT_EQ(schedule.size(), 3u);
    EXPECT_DOUBLE_EQ(schedule.events()[0].timeSec, 10.0);
    EXPECT_DOUBLE_EQ(schedule.events()[1].timeSec, 20.0);
    EXPECT_DOUBLE_EQ(schedule.events()[2].timeSec, 30.0);
}

TEST(FaultSchedule, CoolingScaleComposesActiveWindows)
{
    const hf::FaultSchedule schedule(
        {event(10.0, hf::FaultKind::AirflowDegrade, 0.5, 20.0),
         event(20.0, hf::FaultKind::AirflowDegrade, 0.8)});
    EXPECT_DOUBLE_EQ(schedule.coolingScaleAt(0.0), 1.0);
    EXPECT_DOUBLE_EQ(schedule.coolingScaleAt(15.0), 0.5);
    EXPECT_DOUBLE_EQ(schedule.coolingScaleAt(25.0), 0.5 * 0.8);
    EXPECT_DOUBLE_EQ(schedule.coolingScaleAt(40.0), 0.8); // window ended
}

TEST(FaultSchedule, AmbientOffsetsSumStepsAndSpikes)
{
    const hf::FaultSchedule schedule(
        {event(10.0, hf::FaultKind::AmbientStep, 3.0),
         event(20.0, hf::FaultKind::AmbientSpike, 5.0, 10.0)});
    EXPECT_DOUBLE_EQ(schedule.ambientOffsetAt(5.0), 0.0);
    EXPECT_DOUBLE_EQ(schedule.ambientOffsetAt(15.0), 3.0);
    EXPECT_DOUBLE_EQ(schedule.ambientOffsetAt(25.0), 8.0);
    EXPECT_DOUBLE_EQ(schedule.ambientOffsetAt(35.0), 3.0); // spike over
}

TEST(FaultSchedule, TargetedEventsAddressOneIndex)
{
    const hf::FaultSchedule schedule(
        {event(0.0, hf::FaultKind::AirflowDegrade, 0.5, 0.0, 2),
         event(0.0, hf::FaultKind::AirflowDegrade, 0.25, 0.0, -1)});
    EXPECT_DOUBLE_EQ(schedule.coolingScaleAt(1.0, 2), 0.5 * 0.25);
    EXPECT_DOUBLE_EQ(schedule.coolingScaleAt(1.0, 1), 0.25);
    // The drive-level view (-1) only sees untargeted events.
    EXPECT_DOUBLE_EQ(schedule.coolingScaleAt(1.0, -1), 0.25);
}

TEST(FaultSchedule, BayPowerLastEdgeWins)
{
    const hf::FaultSchedule schedule(
        {event(10.0, hf::FaultKind::BayKill, 0.0, 0.0, 3),
         event(20.0, hf::FaultKind::BayRestore, 0.0, 0.0, 3)});
    EXPECT_FALSE(schedule.bayKilledAt(5.0, 3));
    EXPECT_TRUE(schedule.bayKilledAt(10.0, 3));
    EXPECT_TRUE(schedule.bayKilledAt(19.9, 3));
    EXPECT_FALSE(schedule.bayKilledAt(20.0, 3));
    EXPECT_FALSE(schedule.bayKilledAt(15.0, 4)); // other bay untouched
    EXPECT_TRUE(schedule.hasBayPowerEvents());
    EXPECT_FALSE(schedule.hasSensorFaults());
}

TEST(FaultSchedule, RejectsOutOfDomainEvents)
{
    EXPECT_THROW(hf::FaultSchedule(
                     {event(-1.0, hf::FaultKind::AmbientStep, 1.0)}),
                 hu::ModelError);
    EXPECT_THROW(hf::FaultSchedule(
                     {event(0.0, hf::FaultKind::AirflowDegrade, 0.0)}),
                 hu::ModelError);
    EXPECT_THROW(hf::FaultSchedule(
                     {event(0.0, hf::FaultKind::AmbientSpike, 5.0, 0.0)}),
                 hu::ModelError);
    EXPECT_THROW(hf::FaultSchedule(
                     {event(0.0, hf::FaultKind::SensorNoise, -0.5, 10.0)}),
                 hu::ModelError);
    EXPECT_THROW(hf::FaultSchedule({event(0.0, hf::FaultKind::BayKill)}),
                 hu::ModelError);
}

TEST(FaultPlayer, EmptyScheduleIsTransparent)
{
    hf::FaultPlayer player{hf::FaultSchedule()};
    EXPECT_TRUE(player.empty());
    EXPECT_DOUBLE_EQ(player.coolingScaleAt(100.0), 1.0);
    EXPECT_DOUBLE_EQ(player.ambientOffsetAt(100.0), 0.0);
    const auto reading = player.sense(1.0, 42.25);
    EXPECT_TRUE(reading.valid);
    EXPECT_DOUBLE_EQ(reading.valueC, 42.25);
}

TEST(FaultPlayer, DropoutInvalidatesTheWindow)
{
    hf::FaultPlayer player{hf::FaultSchedule(
        {event(10.0, hf::FaultKind::SensorDropout, 0.0, 5.0)})};
    EXPECT_TRUE(player.sense(9.9, 40.0).valid);
    EXPECT_FALSE(player.sense(10.0, 40.0).valid);
    EXPECT_FALSE(player.sense(14.9, 40.0).valid);
    EXPECT_TRUE(player.sense(15.0, 40.0).valid);
}

TEST(FaultPlayer, StuckLatchesTheFirstReadingInWindow)
{
    hf::FaultPlayer player{hf::FaultSchedule(
        {event(10.0, hf::FaultKind::SensorStuck, 0.0, 10.0)})};
    EXPECT_DOUBLE_EQ(player.sense(5.0, 39.0).valueC, 39.0);
    EXPECT_DOUBLE_EQ(player.sense(10.0, 40.5).valueC, 40.5); // latches
    EXPECT_DOUBLE_EQ(player.sense(15.0, 44.0).valueC, 40.5);
    EXPECT_DOUBLE_EQ(player.sense(19.9, 46.0).valueC, 40.5);
    EXPECT_DOUBLE_EQ(player.sense(20.0, 46.0).valueC, 46.0); // released
}

TEST(FaultPlayer, NoiseIsDeterministicPerStream)
{
    const hf::FaultSchedule schedule(
        {event(0.0, hf::FaultKind::SensorNoise, 0.5)}, 77);
    hf::FaultPlayer a(schedule, 0);
    hf::FaultPlayer b(schedule, 0);
    hf::FaultPlayer c(schedule, 1);
    bool streams_differ = false;
    bool noise_seen = false;
    for (int i = 0; i < 32; ++i) {
        const double t = 0.1 * i;
        const auto ra = a.sense(t, 40.0);
        const auto rb = b.sense(t, 40.0);
        const auto rc = c.sense(t, 40.0);
        ASSERT_TRUE(ra.valid);
        EXPECT_DOUBLE_EQ(ra.valueC, rb.valueC); // same stream: identical
        streams_differ = streams_differ || ra.valueC != rc.valueC;
        noise_seen = noise_seen || ra.valueC != 40.0;
    }
    EXPECT_TRUE(streams_differ);
    EXPECT_TRUE(noise_seen);
}

TEST(FaultPlayer, DropoutBeatsStuckBeatsNoise)
{
    hf::FaultPlayer player{hf::FaultSchedule(
        {event(0.0, hf::FaultKind::SensorNoise, 1.0),
         event(10.0, hf::FaultKind::SensorStuck, 0.0, 20.0),
         event(20.0, hf::FaultKind::SensorDropout, 0.0, 5.0)})};
    EXPECT_TRUE(player.sense(5.0, 40.0).valid); // noise only
    const auto stuck = player.sense(10.0, 41.0);
    EXPECT_TRUE(stuck.valid);
    EXPECT_DOUBLE_EQ(stuck.valueC, 41.0); // latched truth, no noise on top
    EXPECT_DOUBLE_EQ(player.sense(15.0, 43.0).valueC, 41.0);
    EXPECT_FALSE(player.sense(22.0, 44.0).valid); // dropout wins
    EXPECT_DOUBLE_EQ(player.sense(27.0, 45.0).valueC, 41.0); // stuck again
}

TEST(FaultPlayer, IgnoresTargetedEvents)
{
    hf::FaultPlayer player{hf::FaultSchedule(
        {event(0.0, hf::FaultKind::SensorDropout, 0.0, 0.0, 3)})};
    EXPECT_TRUE(player.sense(1.0, 40.0).valid);
}

TEST(ThermalFaultHooks, CoolingFaultScaleHeatsTheSteadyState)
{
    ht::DriveThermalModel model(thermalConfig());
    const double healthy = model.steadyAirTempC();
    model.setCoolingFaultScale(0.5);
    EXPECT_GT(model.steadyAirTempC(), healthy + 1.0);
    model.setCoolingFaultScale(1.0);
    EXPECT_DOUBLE_EQ(model.steadyAirTempC(), healthy);
    EXPECT_THROW(model.setCoolingFaultScale(0.0), hu::ModelError);
}

TEST(ThermalFaultHooks, AmbientOffsetShiftsTheBoundary)
{
    ht::DriveThermalModel model(thermalConfig());
    const double base = model.steadyAirTempC();
    model.setAmbientOffsetC(5.0);
    EXPECT_DOUBLE_EQ(model.effectiveAmbientC(),
                     model.config().ambientC + 5.0);
    EXPECT_NEAR(model.steadyAirTempC(), base + 5.0, 0.2);
    model.setAmbientOffsetC(0.0);
    EXPECT_DOUBLE_EQ(model.steadyAirTempC(), base);
}

TEST(ThermalFaultHooks, PoweredOffDissipatesNothing)
{
    ht::DriveThermalModel model(thermalConfig());
    EXPECT_GT(model.totalPowerW(), 0.0);
    model.setPowered(false);
    EXPECT_FALSE(model.powered());
    EXPECT_DOUBLE_EQ(model.totalPowerW(), 0.0);
    model.setPowered(true);
    EXPECT_GT(model.totalPowerW(), 0.0);
}

TEST(CoSimFaults, AirflowFaultHeatsTheDrive)
{
    // The case/base thermal masses respond over minutes, so the fault
    // must be deep and the run long enough for the air to clearly move.
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(15020.0);
    const auto workload =
        randomWorkload(3000, diskSpace(cfg.system), 50.0);
    const auto clean = hd::CoSimulation(cfg).run(workload);

    cfg.faults = hf::FaultSchedule(
        {event(1.0, hf::FaultKind::AirflowDegrade, 0.25)});
    const auto faulted = hd::CoSimulation(cfg).run(workload);
    EXPECT_GT(faulted.maxTempC, clean.maxTempC + 0.5);
}

TEST(CoSimFaults, DropoutEntersAndExitsFailSafe)
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(24534.0);
    cfg.policy = hd::DtmPolicy::GateRequests;
    cfg.failSafeInvalidTicks = 3;
    cfg.faults = hf::FaultSchedule(
        {event(1.0, hf::FaultKind::SensorDropout, 0.0, 4.0)});
    const auto workload =
        randomWorkload(1500, diskSpace(cfg.system), 100.0);
    const auto result = hd::CoSimulation(cfg).run(workload);
    EXPECT_EQ(result.metrics.count(), 1500u); // recovers and completes
    EXPECT_GT(result.invalidReadings, 0u);
    EXPECT_EQ(result.failSafeActivations, 1u);
    EXPECT_GT(result.failSafeSec, 0.0);
    EXPECT_GT(result.gateEvents, 0u);
}

TEST(CoSimFaults, PolicyNoneHasNoFailSafeActuator)
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(15020.0);
    cfg.policy = hd::DtmPolicy::None;
    cfg.faults = hf::FaultSchedule(
        {event(1.0, hf::FaultKind::SensorDropout, 0.0, 3.0)});
    const auto workload = randomWorkload(600, diskSpace(cfg.system), 80.0);
    const auto result = hd::CoSimulation(cfg).run(workload);
    EXPECT_GT(result.invalidReadings, 0u);
    EXPECT_EQ(result.failSafeActivations, 0u);
    EXPECT_EQ(result.gateEvents, 0u);
}

TEST(CoSimFaults, BayPowerGatesAndSilencesTheDrive)
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(15020.0);
    hd::CoSimEngine engine(cfg);
    const auto workload = randomWorkload(400, diskSpace(cfg.system), 50.0);
    engine.start(workload);
    engine.advanceTo(1.0);
    EXPECT_GT(engine.heatOutputW(), 0.0);

    engine.setBayPower(false);
    EXPECT_FALSE(engine.bayPowered());
    EXPECT_DOUBLE_EQ(engine.heatOutputW(), 0.0);
    const auto done_before = engine.result().metrics.count();
    engine.advanceTo(3.0);
    // Powered off: nothing dispatches, nothing completes.
    EXPECT_EQ(engine.result().metrics.count(), done_before);

    engine.setBayPower(true);
    engine.advanceToCompletion();
    EXPECT_TRUE(engine.finished());
    EXPECT_EQ(engine.result().metrics.count(), 400u);
}

TEST(EmergencyReport, SummarizesRunAgainstBaseline)
{
    hd::CoSimConfig cfg;
    cfg.system = smallSystem(24534.0);
    cfg.policy = hd::DtmPolicy::GateRequests;
    const auto workload =
        randomWorkload(1000, diskSpace(cfg.system), 100.0);
    const auto clean = hd::CoSimulation(cfg).run(workload);

    cfg.faults = hf::FaultSchedule(
        {event(1.0, hf::FaultKind::AirflowDegrade, 0.6)});
    const auto faulted = hd::CoSimulation(cfg).run(workload);

    const auto report = hd::emergencyReport(faulted, clean);
    EXPECT_TRUE(report.hasBaseline);
    EXPECT_DOUBLE_EQ(report.simulatedSec, faulted.simulatedSec);
    EXPECT_DOUBLE_EQ(report.maxTempC, faulted.maxTempC);
    EXPECT_DOUBLE_EQ(report.meanLatencyMs, faulted.metrics.meanMs());
    EXPECT_DOUBLE_EQ(report.baselineMeanLatencyMs, clean.metrics.meanMs());
    EXPECT_NEAR(report.latencyPenaltyMs,
                faulted.metrics.meanMs() - clean.metrics.meanMs(), 1e-12);
    EXPECT_GE(report.throttlePenaltySec, 0.0);
    EXPECT_GE(report.gatedFraction(), 0.0);
    EXPECT_LE(report.gatedFraction(), 1.0);

    const std::string text = hf::formatEmergencyReport(report);
    EXPECT_NE(text.find("fail-safe"), std::string::npos);
    EXPECT_NE(text.find("envelope"), std::string::npos);

    const auto solo = hd::emergencyReport(faulted);
    EXPECT_FALSE(solo.hasBaseline);
}
