/**
 * @file
 * Property tests for the fault-injection layer:
 *
 *   - an all-null schedule (identity factors, zero deltas, zero sigma) is
 *     bit-identical to running with no schedule at all;
 *   - cooling faults move temperatures, never energy: the dissipated power
 *     is invariant and the transient converges to the faulted steady state;
 *   - a faulted fleet keeps the determinism contract: bit-identical
 *     aggregates for every executor thread count.
 */
#include <gtest/gtest.h>

#include "dtm/cosim.h"
#include "fault/fault_schedule.h"
#include "fleet/fleet_sim.h"
#include "thermal/drive_thermal.h"
#include "thermal/envelope.h"

namespace hd = hddtherm::dtm;
namespace hfa = hddtherm::fault;
namespace hfl = hddtherm::fleet;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;

namespace {

hfa::FaultEvent
event(double at, hfa::FaultKind kind, double value = 0.0,
      double duration = 0.0, int target = -1)
{
    hfa::FaultEvent e;
    e.timeSec = at;
    e.kind = kind;
    e.value = value;
    e.durationSec = duration;
    e.target = target;
    return e;
}

hs::SystemConfig
hotDrive()
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = 24534.0;
    cfg.disks = 1;
    return cfg;
}

std::vector<hs::IoRequest>
randomWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        out.push_back(r);
    }
    return out;
}

hfl::FleetConfig
faultedFleet()
{
    hfl::FleetConfig cfg;
    cfg.racks = 1;
    cfg.rack.chassisCount = 2;
    cfg.chassis.bays = 3;
    // A hot drive gated by DTM at the default 28 °C aisle can never cool
    // below its resume threshold once faults heat the chassis; a 27 °C
    // cold aisle keeps the run convergent (see the verify notes).
    cfg.rack.inletC = 27.0;
    cfg.bay.system = hotDrive();
    cfg.bay.policy = hd::DtmPolicy::GateRequests;
    cfg.workload.requests = 150;
    cfg.workload.arrivalRatePerSec = 100.0;
    cfg.epochSec = 0.25;
    cfg.maxSimulatedSec = 600.0;
    cfg.seed = 7;
    // One fault of every routing class: a chassis airflow fault, a bay
    // power cycle, a broadcast sensor-noise window (independent per-bay
    // streams), and a targeted dropout long enough to trip the fail-safe.
    cfg.faults = hfa::FaultSchedule(
        {event(1.0, hfa::FaultKind::AirflowDegrade, 0.6, 4.0, 0),
         event(1.0, hfa::FaultKind::SensorNoise, 0.3, 6.0),
         event(1.5, hfa::FaultKind::BayKill, 0.0, 0.0, 1),
         event(3.0, hfa::FaultKind::BayRestore, 0.0, 0.0, 1),
         event(1.0, hfa::FaultKind::SensorDropout, 0.0, 2.0, 2)},
        99);
    return cfg;
}

} // namespace

TEST(FaultProperties, NullScheduleIsBitIdenticalToNoSchedule)
{
    hd::CoSimConfig clean;
    clean.system = hotDrive();
    clean.policy = hd::DtmPolicy::GateRequests;
    const auto workload =
        randomWorkload(1200, hs::StorageSystem(clean.system).logicalSectors(),
                       120.0);
    const auto a = hd::CoSimulation(clean).run(workload);

    // Identity events walk the whole fault path — the player is
    // constructed, overrides are applied every tick, every reading passes
    // through sense() — but scale x1, offset +0 and sigma 0 are exact
    // no-ops in IEEE arithmetic, so nothing may move by even one ulp.
    hd::CoSimConfig null_faults = clean;
    null_faults.faults = hfa::FaultSchedule(
        {event(0.0, hfa::FaultKind::AirflowDegrade, 1.0),
         event(0.0, hfa::FaultKind::AmbientStep, 0.0),
         event(0.0, hfa::FaultKind::AmbientSpike, 0.0, 5.0),
         event(0.0, hfa::FaultKind::SensorNoise, 0.0)},
        1234);
    const auto b = hd::CoSimulation(null_faults).run(workload);

    EXPECT_EQ(a.metrics.count(), b.metrics.count());
    EXPECT_EQ(a.metrics.meanMs(), b.metrics.meanMs());
    EXPECT_EQ(a.metrics.stats().variance(), b.metrics.stats().variance());
    EXPECT_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.meanTempC, b.meanTempC);
    EXPECT_EQ(a.envelopeExceededSec, b.envelopeExceededSec);
    EXPECT_EQ(a.gateEvents, b.gateEvents);
    EXPECT_EQ(a.gatedSec, b.gatedSec);
    EXPECT_EQ(a.simulatedSec, b.simulatedSec);
    EXPECT_EQ(a.meanVcmDuty, b.meanVcmDuty);
    EXPECT_EQ(b.invalidReadings, 0u);
    EXPECT_EQ(b.failSafeActivations, 0u);
}

TEST(FaultProperties, CoolingFaultsMoveTemperatureNotEnergy)
{
    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.geometry.platters = 1;
    cfg.rpm = 15020.0;
    cfg.vcmDuty = 1.0;
    cfg.coolingScale = ht::coolingScaleForPlatters(cfg.geometry.platters);
    ht::DriveThermalModel model(cfg);

    const double healthy_power = model.totalPowerW();
    double previous_steady = 0.0;
    for (const double scale : {2.0, 1.0, 0.5, 0.25}) {
        model.setCoolingFaultScale(scale);
        // The fault changes where the heat goes, not how much is made:
        // dissipation depends on rpm and duty only.
        EXPECT_EQ(model.totalPowerW(), healthy_power);
        // Worse cooling, hotter steady state (strict monotonicity).
        const double steady = model.steadyAirTempC();
        EXPECT_GT(steady, previous_steady);
        previous_steady = steady;
        // Energy balance: integrating the transient long enough lands on
        // the faulted steady state (what flows in flows out).
        model.settleWithAirAt(model.config().ambientC);
        model.advance(20000.0, 0.5);
        EXPECT_NEAR(model.airTempC(), steady, 0.05);
    }
}

TEST(FaultProperties, FaultedFleetBitIdenticalAcrossThreadCounts)
{
    const auto cfg = faultedFleet();
    const auto base = hfl::FleetSimulation(cfg).run(1);

    // The schedule really fired: blind bays tripped the fail-safe and the
    // killed bay still finished its workload after restore.
    EXPECT_GT(base.invalidReadings, 0u);
    EXPECT_GT(base.failSafeActivations, 0u);
    EXPECT_EQ(base.metrics.count(),
              std::uint64_t(cfg.totalBays()) * cfg.workload.requests);

    for (int threads : {2, 4}) {
        const auto other = hfl::FleetSimulation(cfg).run(threads);
        EXPECT_EQ(base.metrics.count(), other.metrics.count());
        EXPECT_EQ(base.metrics.meanMs(), other.metrics.meanMs());
        EXPECT_EQ(base.metrics.stats().variance(),
                  other.metrics.stats().variance());
        EXPECT_EQ(base.p95LatencyMs, other.p95LatencyMs);
        EXPECT_EQ(base.maxDriveTempC, other.maxDriveTempC);
        EXPECT_EQ(base.gateEvents, other.gateEvents);
        EXPECT_EQ(base.gatedSec, other.gatedSec);
        EXPECT_EQ(base.epochs, other.epochs);
        EXPECT_EQ(base.invalidReadings, other.invalidReadings);
        EXPECT_EQ(base.failSafeActivations, other.failSafeActivations);
        EXPECT_EQ(base.failSafeSec, other.failSafeSec);
        ASSERT_EQ(base.chassis.size(), other.chassis.size());
        for (std::size_t i = 0; i < base.chassis.size(); ++i) {
            EXPECT_EQ(base.chassis[i].peakDriveAmbientC,
                      other.chassis[i].peakDriveAmbientC);
            EXPECT_EQ(base.chassis[i].peakDriveTempC,
                      other.chassis[i].peakDriveTempC);
            EXPECT_EQ(base.chassis[i].gateEvents,
                      other.chassis[i].gateEvents);
        }
    }
}
