/**
 * @file
 * Fault-schedule config parsing plus smoke tests of the two shipped
 * emergency scenarios (examples/configs): the files must parse, round-trip
 * through the formatter, and actually drive the co-simulation through the
 * behavior they advertise (throttling for the fan failure, fail-safe
 * entries for the sensor soak).
 */
#include <gtest/gtest.h>

#include "core/config_io.h"
#include "dtm/cosim.h"
#include "util/error.h"

namespace hc = hddtherm::core;
namespace hd = hddtherm::dtm;
namespace hf = hddtherm::fault;
namespace hs = hddtherm::sim;
namespace hu = hddtherm::util;

namespace {

hs::SystemConfig
smallSystem(double rpm)
{
    hs::SystemConfig cfg;
    cfg.disk.geometry.diameterInches = 2.6;
    cfg.disk.geometry.platters = 1;
    cfg.disk.tech = {500e3, 60e3};
    cfg.disk.rpm = rpm;
    cfg.disk.rpmChangeSecPerKrpm = 0.02;
    cfg.disks = 1;
    return cfg;
}

std::vector<hs::IoRequest>
steadyWorkload(std::size_t n, std::int64_t space, double rate)
{
    std::vector<hs::IoRequest> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += 1.0 / rate;
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = t;
        r.lba = std::int64_t(i * 7919 * 512) % (space - 64);
        r.sectors = 8;
        r.type = i % 4 ? hs::IoType::Read : hs::IoType::Write;
        out.push_back(r);
    }
    return out;
}

} // namespace

TEST(FaultScheduleIo, ParsesEveryKindAndRoundTrips)
{
    const std::string text = "[schedule]\n"
                             "noise_seed = 42\n"
                             "[fault.0]\n"
                             "at = 10\n"
                             "kind = airflow_degrade\n"
                             "factor = 0.5\n"
                             "duration = 60\n"
                             "[fault.1]\n"
                             "at = 20\n"
                             "kind = ambient_spike\n"
                             "delta_c = 4.5\n"
                             "duration = 30\n"
                             "[fault.2]\n"
                             "at = 30\n"
                             "kind = sensor_noise\n"
                             "sigma_c = 0.25\n"
                             "[fault.3]\n"
                             "at = 40\n"
                             "kind = bay_kill\n"
                             "target = 3\n";
    const auto schedule = hc::parseFaultSchedule(text);
    ASSERT_EQ(schedule.size(), 4u);
    EXPECT_EQ(schedule.noiseSeed(), 42u);
    EXPECT_EQ(schedule.events()[0].kind, hf::FaultKind::AirflowDegrade);
    EXPECT_DOUBLE_EQ(schedule.events()[0].value, 0.5);
    EXPECT_DOUBLE_EQ(schedule.events()[0].durationSec, 60.0);
    EXPECT_EQ(schedule.events()[0].target, -1);
    EXPECT_EQ(schedule.events()[1].kind, hf::FaultKind::AmbientSpike);
    EXPECT_EQ(schedule.events()[2].kind, hf::FaultKind::SensorNoise);
    EXPECT_EQ(schedule.events()[3].kind, hf::FaultKind::BayKill);
    EXPECT_EQ(schedule.events()[3].target, 3);

    // format -> parse is the identity on the parsed representation.
    const auto again = hc::parseFaultSchedule(
        hc::formatFaultSchedule(schedule));
    ASSERT_EQ(again.size(), schedule.size());
    EXPECT_EQ(again.noiseSeed(), schedule.noiseSeed());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_EQ(again.events()[i].kind, schedule.events()[i].kind);
        EXPECT_DOUBLE_EQ(again.events()[i].timeSec,
                         schedule.events()[i].timeSec);
        EXPECT_DOUBLE_EQ(again.events()[i].value,
                         schedule.events()[i].value);
        EXPECT_DOUBLE_EQ(again.events()[i].durationSec,
                         schedule.events()[i].durationSec);
        EXPECT_EQ(again.events()[i].target, schedule.events()[i].target);
    }
}

TEST(FaultScheduleIo, SectionsReplayInNumericOrder)
{
    // fault.10 sorts lexically before fault.2; numeric order must win.
    const std::string text = "[fault.10]\n"
                             "at = 5\n"
                             "kind = ambient_step\n"
                             "delta_c = 2\n"
                             "[fault.2]\n"
                             "at = 5\n"
                             "kind = ambient_step\n"
                             "delta_c = 1\n";
    const auto schedule = hc::parseFaultSchedule(text);
    ASSERT_EQ(schedule.size(), 2u);
    EXPECT_DOUBLE_EQ(schedule.events()[0].value, 1.0);
    EXPECT_DOUBLE_EQ(schedule.events()[1].value, 2.0);
}

TEST(FaultScheduleIo, RejectsMalformedSchedules)
{
    // Unknown section.
    EXPECT_THROW(hc::parseFaultSchedule("[bogus]\nx = 1\n"),
                 hu::ModelError);
    // Bad section index.
    EXPECT_THROW(hc::parseFaultSchedule(
                     "[fault.one]\nat = 0\nkind = ambient_step\n"
                     "delta_c = 1\n"),
                 hu::ModelError);
    // Missing onset.
    EXPECT_THROW(hc::parseFaultSchedule(
                     "[fault.0]\nkind = ambient_step\ndelta_c = 1\n"),
                 hu::ModelError);
    // Missing kind.
    EXPECT_THROW(hc::parseFaultSchedule("[fault.0]\nat = 1\n"),
                 hu::ModelError);
    // Unknown kind.
    EXPECT_THROW(hc::parseFaultSchedule(
                     "[fault.0]\nat = 1\nkind = gremlins\n"),
                 hu::ModelError);
    // Missing magnitude for a kind that needs one.
    EXPECT_THROW(hc::parseFaultSchedule(
                     "[fault.0]\nat = 1\nkind = airflow_degrade\n"),
                 hu::ModelError);
    // Stray magnitude on a kind that takes none.
    EXPECT_THROW(hc::parseFaultSchedule(
                     "[fault.0]\nat = 1\nkind = sensor_dropout\n"
                     "sigma_c = 1\n"),
                 hu::ModelError);
    // Out-of-domain value (validated by the schedule itself).
    EXPECT_THROW(hc::parseFaultSchedule(
                     "[fault.0]\nat = 1\nkind = airflow_degrade\n"
                     "factor = 0\n"),
                 hu::ModelError);
}

TEST(FaultScenarios, FanFailureEmergencyThrottlesTheDrive)
{
    const auto schedule = hc::loadFaultSchedule(
        HDDTHERM_CONFIG_DIR "/fan_failure_emergency.ini");
    ASSERT_EQ(schedule.size(), 2u);
    EXPECT_EQ(schedule.events()[0].kind, hf::FaultKind::AirflowDegrade);
    EXPECT_EQ(schedule.events()[1].kind, hf::FaultKind::AmbientStep);
    EXPECT_FALSE(schedule.hasSensorFaults());

    hd::CoSimConfig cfg;
    cfg.system = smallSystem(24534.0);
    cfg.policy = hd::DtmPolicy::GateRequests;
    cfg.faults = schedule;
    const auto workload = steadyWorkload(
        1500, hs::StorageSystem(cfg.system).logicalSectors(), 20.0);
    const auto result = hd::CoSimulation(cfg).run(workload);
    EXPECT_EQ(result.metrics.count(), 1500u);
    // The collapse arrives at t = 60 s with the drive already governed at
    // the envelope: the policy must throttle through the window.
    EXPECT_GT(result.gateEvents, 0u);
    EXPECT_GT(result.gatedSec, 0.0);
    EXPECT_EQ(result.failSafeActivations, 0u); // sensor stays healthy
}

TEST(FaultScenarios, NoisySensorSoakTripsTheFailSafe)
{
    const auto schedule = hc::loadFaultSchedule(
        HDDTHERM_CONFIG_DIR "/noisy_sensor_soak.ini");
    ASSERT_EQ(schedule.size(), 4u);
    EXPECT_TRUE(schedule.hasSensorFaults());
    EXPECT_EQ(schedule.noiseSeed(), 77u);

    hd::CoSimConfig cfg;
    cfg.system = smallSystem(15020.0);
    cfg.policy = hd::DtmPolicy::GateRequests;
    cfg.faults = schedule;
    const auto workload = steadyWorkload(
        4500, hs::StorageSystem(cfg.system).logicalSectors(), 20.0);
    const auto result = hd::CoSimulation(cfg).run(workload);
    EXPECT_EQ(result.metrics.count(), 4500u);
    EXPECT_GT(result.invalidReadings, 0u);
    // Both dropout windows outlast failSafeInvalidTicks control periods.
    EXPECT_EQ(result.failSafeActivations, 2u);
    EXPECT_GT(result.failSafeSec, 0.0);
    // The drive itself never had a thermal emergency.
    EXPECT_LE(result.maxTempC, cfg.envelopeC + 0.1);
}
