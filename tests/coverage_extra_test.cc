/**
 * @file
 * Edge-case coverage for surfaces the module suites don't reach: geometry
 * validation, network accessors, thermal model introspection, scenario
 * helpers, hybrid accessors, and co-simulation warm-up handling.
 */
#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "dtm/cosim.h"
#include "hdd/geometry.h"
#include "sim/hybrid.h"
#include "thermal/drive_thermal.h"
#include "thermal/network.h"
#include "util/error.h"
#include "util/units.h"

namespace hc = hddtherm::core;
namespace hd = hddtherm::dtm;
namespace hh = hddtherm::hdd;
namespace hs = hddtherm::sim;
namespace ht = hddtherm::thermal;
namespace hu = hddtherm::util;

TEST(Geometry, PlatterValidation)
{
    hh::PlatterGeometry g;
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(g.surfaces(), 2);
    EXPECT_DOUBLE_EQ(g.innerRadiusInches(), g.outerRadiusInches() / 2.0);

    g.diameterInches = -1.0;
    EXPECT_THROW(g.validate(), hu::ModelError);
    g = hh::PlatterGeometry{};
    g.innerRatio = 1.0;
    EXPECT_THROW(g.validate(), hu::ModelError);
    g = hh::PlatterGeometry{};
    g.strokeEfficiency = 0.0;
    EXPECT_THROW(g.validate(), hu::ModelError);
}

TEST(Geometry, FormFactorAreas)
{
    const auto ff = hh::FormFactor::ff35();
    EXPECT_DOUBLE_EQ(ff.plateAreaSqIn(), 5.75 * 4.0);
    EXPECT_DOUBLE_EQ(ff.externalAreaSqIn(),
                     2.0 * 23.0 + 2.0 * 1.0 * 9.75);
    const auto small = hh::FormFactor::ff25();
    EXPECT_LT(small.externalAreaSqIn(), ff.externalAreaSqIn());
}

TEST(Network, ConductanceGetterAndZeroEdges)
{
    ht::ThermalNetwork net;
    const auto a = net.addBoundaryNode("amb", 0.0);
    const auto b = net.addNode("b", 1.0, 0.0);
    EXPECT_DOUBLE_EQ(net.conductance(a, b), 0.0);
    net.setConductance(a, b, 0.0); // zero edge is legal (disconnected)
    EXPECT_DOUBLE_EQ(net.conductance(a, b), 0.0);
    net.setConductance(a, b, 2.5);
    EXPECT_DOUBLE_EQ(net.conductance(b, a), 2.5);
    EXPECT_EQ(net.size(), 2);
    EXPECT_EQ(net.node(b).name, "b");
    EXPECT_THROW(net.step(0.0), hu::ModelError);
    EXPECT_NO_THROW(net.advance(0.0, 0.1)); // empty advance is a no-op
}

TEST(Network, HeatInputAccessors)
{
    ht::ThermalNetwork net;
    net.addBoundaryNode("amb", 0.0);
    const auto b = net.addNode("b", 1.0, 0.0);
    net.setHeatInput(b, 3.5);
    EXPECT_DOUBLE_EQ(net.heatInput(b), 3.5);
    EXPECT_THROW(net.heatInput(99), hu::ModelError);
}

TEST(DriveThermal, IntrospectionSurfaces)
{
    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.rpm = 15000.0;
    ht::DriveThermalModel m(cfg);
    EXPECT_NEAR(m.totalPowerW(),
                m.viscousPowerW() + m.vcmPowerW() + m.spmPowerW(), 1e-12);

    const auto temps = m.steadyTemps();
    ASSERT_EQ(temps.size(), 4u);
    // Spindle runs hottest (it hosts the motor loss); base is coolest of
    // the free nodes (it touches the ambient).
    EXPECT_GT(temps[1], temps[0]); // spindle > air
    EXPECT_LT(temps[2], temps[0]); // base < air
    EXPECT_GT(m.network().temperature(m.ambientNode()), 0.0);
    EXPECT_GT(ht::DriveThermalModel::calibratedExternalFilmCoefficient(),
              5.0);
}

TEST(DriveThermal, DutyScalingOfVcmPower)
{
    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.rpm = 15000.0;
    cfg.vcmDuty = 0.5;
    ht::DriveThermalModel m(cfg);
    EXPECT_DOUBLE_EQ(m.vcmPowerW(), 0.5 * 3.9);
    m.setVcmDuty(0.25);
    EXPECT_DOUBLE_EQ(m.vcmPowerW(), 0.25 * 3.9);
}

TEST(DriveThermal, PowerOverridesRespected)
{
    ht::DriveThermalConfig cfg;
    cfg.geometry.diameterInches = 2.6;
    cfg.rpm = 15000.0;
    cfg.vcmPowerOverrideW = 1.0;
    cfg.spmPowerOverrideW = 5.0;
    ht::DriveThermalModel m(cfg);
    EXPECT_DOUBLE_EQ(m.vcmPowerW(), 1.0);
    EXPECT_DOUBLE_EQ(m.spmPowerW(), 5.0);
    // Less heat than the calibrated drive: cooler steady state.
    ht::DriveThermalConfig stock = cfg;
    stock.vcmPowerOverrideW.reset();
    stock.spmPowerOverrideW.reset();
    EXPECT_LT(m.steadyAirTempC(), ht::steadyAirTempC(stock));
}

TEST(Hybrid, AccessorsAndEventQueue)
{
    hs::HybridConfig cfg;
    cfg.primary.tech = {400e3, 30e3};
    cfg.cacheDisk.geometry.diameterInches = 1.6;
    cfg.cacheDisk.tech = {400e3, 30e3};
    hs::HybridSystem sys(cfg);
    EXPECT_EQ(sys.metrics().count(), 0u);
    EXPECT_DOUBLE_EQ(sys.events().now(), 0.0);
    EXPECT_EQ(sys.primary().id(), 0);
    EXPECT_EQ(sys.cacheDisk().id(), 1);
}

TEST(CoSim, WarmupFractionValidation)
{
    hd::CoSimConfig cfg;
    cfg.system.disk.tech = {500e3, 60e3};
    cfg.system.disk.rpm = 15020.0;
    cfg.warmupFraction = 1.0;
    EXPECT_THROW({ hd::CoSimulation c(cfg); }, hu::ModelError);
    cfg.warmupFraction = -0.1;
    EXPECT_THROW({ hd::CoSimulation c(cfg); }, hu::ModelError);
}

TEST(CoSim, WarmupResetsMetrics)
{
    hd::CoSimConfig cfg;
    cfg.system.disk.tech = {500e3, 60e3};
    cfg.system.disk.rpm = 15020.0;
    cfg.warmupFraction = 0.5;
    hd::CoSimulation cosim(cfg);
    std::vector<hs::IoRequest> workload;
    for (std::uint64_t i = 0; i < 100; ++i) {
        hs::IoRequest r;
        r.id = i + 1;
        r.arrival = double(i) * 0.01;
        r.lba = std::int64_t(i) * 5000;
        r.sectors = 8;
        workload.push_back(r);
    }
    const auto result = cosim.run(workload);
    // Only the post-warm-up half is reported.
    EXPECT_EQ(result.metrics.count(), 50u);
}

TEST(Scenarios, MakeTraceCoversLogicalSpaceSafely)
{
    const auto s = hc::figure4Scenario("TPC-H", 3000);
    const auto tr = s.makeTrace();
    const hs::StorageSystem probe(s.system);
    for (const auto& r : tr.records()) {
        EXPECT_GE(r.lba, 0);
        EXPECT_LE(r.lba + r.sectors, probe.logicalSectors());
        EXPECT_LT(r.device, s.workload.devices);
    }
}

TEST(Units, Conversions)
{
    using namespace hddtherm::util;
    EXPECT_DOUBLE_EQ(inchesToMeters(1.0), 0.0254);
    EXPECT_DOUBLE_EQ(metersToInches(0.0254), 1.0);
    EXPECT_NEAR(rpmToRadPerSec(60.0), 2.0 * 3.14159265358979, 1e-9);
    EXPECT_DOUBLE_EQ(rpmToRevPerSec(15000.0), 250.0);
    EXPECT_DOUBLE_EQ(revolutionTimeSec(15000.0), 0.004);
    EXPECT_DOUBLE_EQ(celsiusToKelvin(0.0), 273.15);
    EXPECT_NEAR(kelvinToCelsius(300.0), 26.85, 1e-12);
    EXPECT_DOUBLE_EQ(secToMs(1.5), 1500.0);
    EXPECT_DOUBLE_EQ(msToSec(250.0), 0.25);
}
