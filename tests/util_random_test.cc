/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/random.h"

namespace hu = hddtherm::util;

TEST(Rng, DeterministicForSameSeed)
{
    hu::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    hu::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(Rng, StreamSplittingIsDeterministic)
{
    EXPECT_EQ(hu::deriveStreamSeed(42, 7), hu::deriveStreamSeed(42, 7));
    hu::Rng a = hu::Rng::forStream(42, 7);
    hu::Rng b = hu::Rng::forStream(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDivergeFromEachOtherAndTheParent)
{
    hu::Rng parent(42);
    hu::Rng s0 = hu::Rng::forStream(42, 0);
    hu::Rng s1 = hu::Rng::forStream(42, 1);
    int parent_matches = 0, sibling_matches = 0;
    for (int i = 0; i < 64; ++i) {
        const auto p = parent(), x = s0(), y = s1();
        parent_matches += (x == p);
        sibling_matches += (x == y);
    }
    EXPECT_LT(parent_matches, 4);
    EXPECT_LT(sibling_matches, 4);
}

TEST(Rng, SplitStreamsAreStatisticallyIndependent)
{
    // Statistical smoke test over adjacent shard streams (the worst case
    // for a weak splitter): per-stream uniform means stay near 1/2 and the
    // pairwise sample correlation of neighbouring streams stays near 0.
    constexpr int streams = 8;
    constexpr int n = 20000;
    std::vector<std::vector<double>> draws(streams);
    for (int s = 0; s < streams; ++s) {
        hu::Rng rng = hu::Rng::forStream(99, std::uint64_t(s));
        draws[s].reserve(n);
        double sum = 0.0;
        for (int i = 0; i < n; ++i) {
            const double u = rng.uniform();
            draws[s].push_back(u);
            sum += u;
        }
        EXPECT_NEAR(sum / n, 0.5, 0.02) << "stream " << s;
    }
    for (int s = 0; s + 1 < streams; ++s) {
        double corr = 0.0;
        for (int i = 0; i < n; ++i)
            corr += (draws[s][i] - 0.5) * (draws[s + 1][i] - 0.5);
        corr /= n * (1.0 / 12.0); // uniform variance
        EXPECT_NEAR(corr, 0.0, 0.05) << "streams " << s << "," << s + 1;
    }
}

TEST(Rng, UniformWithinRange)
{
    hu::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    hu::Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    hu::Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsEmptyRange)
{
    hu::Rng rng(5);
    EXPECT_THROW(rng.uniformInt(3, 2), hu::ModelError);
}

TEST(Rng, ExponentialMeanMatches)
{
    hu::Rng rng(13);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ExponentialIsPositive)
{
    hu::Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ParetoRespectsScale)
{
    hu::Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, NormalMoments)
{
    hu::Rng rng(23);
    hddtherm::util::Rng::result_type dummy = 0;
    (void)dummy;
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(3.0, 2.0);
        sum += x;
        sumsq += x * x;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, BernoulliProbability)
{
    hu::Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(ZipfSampler, UniformWhenThetaZero)
{
    hu::Rng rng(31);
    hu::ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf(rng)];
    for (int c : counts)
        EXPECT_NEAR(double(c) / n, 0.1, 0.01);
}

TEST(ZipfSampler, SkewFavorsLowRanks)
{
    hu::Rng rng(37);
    hu::ZipfSampler zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[9]);
    EXPECT_GT(counts[9], counts[99]);
}

TEST(ZipfSampler, StaysInRange)
{
    hu::Rng rng(41);
    hu::ZipfSampler zipf(5, 2.0);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf(rng), 5u);
}

TEST(ZipfSampler, RejectsEmptyPopulation)
{
    EXPECT_THROW(hu::ZipfSampler(0, 1.0), hu::ModelError);
}
