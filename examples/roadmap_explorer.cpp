/**
 * @file
 * Roadmap explorer: chart the thermally constrained technology roadmap
 * for arbitrary windows, platter counts and cooling assumptions.
 *
 *   ./roadmap_explorer [--platters N] [--ambient C] [--start Y] [--end Y]
 *                      [--ff25]
 */
#include <iostream>

#include "harness/flags.h"
#include "roadmap/roadmap.h"
#include "util/ascii_plot.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    roadmap::RoadmapOptions opts;
    int platters = 1;
    bool ff25 = false;
    harness::FlagParser flags(
        "roadmap_explorer",
        "Chart the thermally constrained technology roadmap.");
    flags.addInt("--platters", &platters, "N", "platters per drive");
    flags.addDouble("--ambient", &opts.ambientC, "C",
                    "ambient temperature");
    flags.addInt("--start", &opts.startYear, "Y", "first roadmap year");
    flags.addInt("--end", &opts.endYear, "Y", "last roadmap year");
    flags.addSwitch("--ff25", &ff25,
                    "use the 2.5\" mobile form-factor enclosure");
    flags.parseOrExit(argc, argv);
    if (ff25)
        opts.enclosure = hdd::FormFactor::ff25();

    const roadmap::RoadmapEngine engine(opts);
    std::cout << "Thermally constrained roadmap, " << platters
              << " platter(s), ambient " << opts.ambientC
              << " C, envelope " << opts.envelopeC << " C\n\n";

    util::TableWriter table({"Year", "KBPI", "KTPI", "BAR", "target IDR",
                             "2.6\" IDR", "2.6\" GB", "2.1\" IDR",
                             "2.1\" GB", "1.6\" IDR", "1.6\" GB"});
    for (int year = opts.startYear; year <= opts.endYear; ++year) {
        std::vector<std::string> row;
        row.push_back(util::TableWriter::num((long long)year));
        row.push_back(
            util::TableWriter::num(engine.timeline().bpi(year) / 1e3, 0));
        row.push_back(
            util::TableWriter::num(engine.timeline().tpi(year) / 1e3, 0));
        row.push_back(util::TableWriter::num(
            engine.timeline().bitAspectRatio(year), 2));
        row.push_back(util::TableWriter::num(
            engine.timeline().targetIdrMBps(year), 1));
        for (const double d : {2.6, 2.1, 1.6}) {
            const auto p = engine.evaluate(year, d, platters);
            std::string idr = util::TableWriter::num(p.achievableIdr, 1);
            if (!p.meetsTarget)
                idr += "*";
            row.push_back(std::move(idr));
            row.push_back(util::TableWriter::num(p.capacityGB, 1));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "(* = below the 40% CGR target; terabit areal density "
                 "arrives in "
              << engine.timeline().terabitYear() << ")\n\n";

    util::AsciiPlot::Options popts;
    popts.logY = true;
    popts.xLabel = "year";
    popts.yLabel = "IDR MB/s";
    util::AsciiPlot plot(popts);
    std::vector<std::pair<double, double>> target;
    for (int year = opts.startYear; year <= opts.endYear; ++year)
        target.emplace_back(double(year),
                            engine.timeline().targetIdrMBps(year));
    plot.addSeries("target", std::move(target));
    for (const double d : {2.6, 2.1, 1.6}) {
        std::vector<std::pair<double, double>> pts;
        for (const auto& p : engine.series(d, platters))
            pts.emplace_back(double(p.year), p.achievableIdr);
        char label[16];
        std::snprintf(label, sizeof(label), "%.1f\"", d);
        plot.addSeries(label, std::move(pts));
    }
    plot.print(std::cout);
    return 0;
}
