/**
 * @file
 * Quickstart: evaluate one drive design with the integrated model.
 *
 * Models a Cheetah-15K.3-class drive (2.6" platter, 15K RPM, 2002
 * recording technology) and prints everything the library knows about it:
 * capacity breakdown, data rate, seek curve, steady-state temperatures,
 * power budget, and the thermal speed ceiling.
 *
 *   ./quickstart [rpm]
 */
#include <iostream>

#include "core/integrated.h"
#include "harness/flags.h"
#include "hdd/capacity.h"
#include "thermal/reliability.h"
#include "thermal/drive_thermal.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    double rpm = 15000.0;
    harness::FlagParser flags(
        "quickstart", "Evaluate one 2.6\" drive design: capacity, "
                      "performance, and thermals.");
    flags.addPositionalDouble("rpm", &rpm, "spindle speed in RPM");
    flags.parseOrExit(argc, argv);

    core::DriveDesign design;
    design.geometry.diameterInches = 2.6;
    design.geometry.platters = 1;
    design.tech = {533e3, 64e3}; // 2002-class recording point
    design.rpm = rpm;

    const auto eval = core::evaluateDesign(design);

    std::cout << "HDDTherm quickstart: 2.6\" x" << design.geometry.platters
              << " platter drive at " << design.rpm << " RPM\n\n";

    std::cout << "Capacity\n"
              << "  raw media capacity : "
              << util::TableWriter::num(eval.capacity.rawGB, 1) << " GB\n"
              << "  after ZBR          : "
              << util::TableWriter::num(eval.capacity.zbrGB, 1) << " GB\n"
              << "  user capacity      : "
              << util::TableWriter::num(eval.capacity.userGB, 1)
              << " GB (servo+ECC overhead "
              << util::TableWriter::num(
                     100.0 * eval.capacity.overheadFraction, 1)
              << "% per sector)\n\n";

    std::cout << "Performance\n"
              << "  max internal data rate : "
              << util::TableWriter::num(eval.idrMBps, 1) << " MB/s\n"
              << "  seek (t2t/avg/full)    : "
              << util::TableWriter::num(eval.seek.trackToTrackMs, 2) << " / "
              << util::TableWriter::num(eval.seek.averageMs, 2) << " / "
              << util::TableWriter::num(eval.seek.fullStrokeMs, 2)
              << " ms\n"
              << "  avg rotational latency : "
              << util::TableWriter::num(eval.avgRotationalLatencyMs, 2)
              << " ms\n\n";

    std::cout << "Thermals (ambient " << design.ambientC << " C)\n"
              << "  heat sources           : windage "
              << util::TableWriter::num(eval.viscousPowerW, 2) << " W, VCM "
              << util::TableWriter::num(eval.vcmPowerW, 2) << " W, SPM "
              << util::TableWriter::num(eval.spmPowerW, 2) << " W\n"
              << "  steady internal air    : "
              << util::TableWriter::num(eval.steadyAirTempC, 2) << " C ("
              << (eval.withinEnvelope ? "within" : "EXCEEDS")
              << " the " << thermal::kThermalEnvelopeC
              << " C envelope)\n"
              << "  thermal speed ceiling  : "
              << util::TableWriter::num(eval.maxRpmWithinEnvelope, 0)
              << " RPM\n"
              << "  failure-rate factor    : "
              << util::TableWriter::num(
                     thermal::failureRateFactor(eval.steadyAirTempC), 2)
              << "x vs " << design.ambientC
              << " C operation (x2 per +15 C)\n\n";

    // Where the heat goes at steady state.
    std::cout << "Steady-state heat flows\n";
    thermal::DriveThermalModel model(design.thermalConfig());
    for (const auto& flow : model.steadyHeatFlows()) {
        std::cout << "  " << flow.path
                  << std::string(flow.path.size() < 16
                                     ? 16 - flow.path.size()
                                     : 1,
                                 ' ')
                  << ": " << util::TableWriter::num(flow.watts, 2)
                  << " W\n";
    }

    // The ZBR bandwidth staircase.
    const auto rates = hdd::zoneDataRatesMBps(design.layout(), design.rpm);
    std::cout << "\nZBR bandwidth staircase: outer zone "
              << util::TableWriter::num(rates.front(), 1)
              << " MB/s -> inner zone "
              << util::TableWriter::num(rates.back(), 1) << " MB/s over "
              << rates.size() << " zones\n";
    return 0;
}
