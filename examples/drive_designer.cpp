/**
 * @file
 * Drive-design explorer: sweep the (platter size x platter count x RPM)
 * design space for a given technology year and report every design
 * point's capacity, data rate and thermal verdict — the tool a drive
 * architect would use to pick next year's product mix.
 *
 *   ./drive_designer [year] [--envelope C] [--ambient C]
 */
#include <iostream>

#include "core/integrated.h"
#include "harness/flags.h"
#include "roadmap/scaling.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    int year = 2005;
    double envelope = thermal::kThermalEnvelopeC;
    double ambient = thermal::kBaselineAmbientC;
    harness::FlagParser flags(
        "drive_designer",
        "Sweep the (platter size x count x RPM) design space for a "
        "technology year.");
    flags.addPositionalInt("year", &year, "technology year");
    flags.addDouble("--envelope", &envelope, "C",
                    "thermal envelope ceiling");
    flags.addDouble("--ambient", &ambient, "C", "ambient temperature");
    flags.parseOrExit(argc, argv);

    const roadmap::TechnologyTimeline timeline;
    const auto tech = timeline.tech(year);
    std::cout << "Design space for " << year << ": "
              << util::TableWriter::num(tech.bpi / 1e3, 0) << " KBPI x "
              << util::TableWriter::num(tech.tpi / 1e3, 0)
              << " KTPI (areal density "
              << util::TableWriter::num(tech.arealDensity() / 1e9, 1)
              << " Gb/in^2), envelope " << envelope << " C, ambient "
              << ambient << " C\n"
              << "target IDR this year: "
              << util::TableWriter::num(timeline.targetIdrMBps(year), 1)
              << " MB/s\n\n";

    util::TableWriter table({"platter", "count", "user GB", "max RPM",
                             "IDR @ max RPM", "temp @ max RPM",
                             "meets target?"});
    for (const double d : {1.6, 2.1, 2.6, 3.3}) {
        for (const int n : {1, 2, 4}) {
            core::DriveDesign design;
            design.geometry.diameterInches = d;
            design.geometry.platters = n;
            design.tech = tech;
            design.ambientC = ambient;
            design.coolingScale = thermal::coolingScaleForPlatters(n);
            design.rpm = 10000.0; // placeholder; ceiling computed below

            const auto eval = core::evaluateDesign(design, envelope);
            const double ceiling = eval.maxRpmWithinEnvelope;
            double idr = 0.0;
            double temp = 0.0;
            if (ceiling > 0.0) {
                design.rpm = ceiling;
                const auto at_max = core::evaluateDesign(design, envelope);
                idr = at_max.idrMBps;
                temp = at_max.steadyAirTempC;
            }
            char label[16];
            std::snprintf(label, sizeof(label), "%.1f\"", d);
            table.addRow(
                {label, util::TableWriter::num((long long)n),
                 util::TableWriter::num(eval.capacity.userGB, 1),
                 util::TableWriter::num(ceiling, 0),
                 util::TableWriter::num(idr, 1),
                 util::TableWriter::num(temp, 2),
                 idr >= timeline.targetIdrMBps(year) ? "yes" : "no"});
        }
    }
    table.print(std::cout);
    return 0;
}
