/**
 * @file
 * Checkpoint inspector: dump or diff .hdtsnap checkpoint files.
 *
 *   ./snap_inspect <checkpoint>             header + section table
 *   ./snap_inspect --fields <checkpoint>    ...plus every field's value
 *   ./snap_inspect --chain <checkpoint>     delta chain lineage
 *   ./snap_inspect --diff <a> <b>           field-by-field difference
 *
 * A plain dump reads the one container as stored — stored vs raw sizes,
 * per-section encoding flags (lz = compressed, lz+dict = delta-encoded
 * against the base), and the delta manifest when present — without
 * touching any base file, so a lone delta can always be inspected.
 * --fields, --chain, and --diff resolve base+delta chains (see
 * docs/checkpoint.md), so delta leaves present their fully merged state;
 * --diff prints each input's lineage first when it is a delta.
 *
 * --diff exits 0 when the two checkpoints are field-identical and 1 when
 * they differ (or either fails to parse), so scripts can assert
 * bit-identical resume behavior.  Floating point is printed with %.17g,
 * which round-trips doubles exactly; byte blobs and vectors are
 * summarized by length and FNV-1a digest.
 */
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/flags.h"
#include "snap/delta.h"
#include "snap/format.h"
#include "util/error.h"

using namespace hddtherm;

namespace {

/// Every field of one section, decoded by the generic cursor.
std::vector<snap::StateReader::Field>
readFields(const snap::CheckpointReader& ckpt, const std::string& name)
{
    std::vector<snap::StateReader::Field> fields;
    snap::StateReader r = ckpt.section(name);
    snap::StateReader::Field f;
    while (r.next(f))
        fields.push_back(f);
    return fields;
}

const char*
flagsLabel(std::uint8_t flags)
{
    if (flags & snap::kSectionDeltaDict)
        return "lz+dict";
    if (flags & snap::kSectionCompressed)
        return "lz";
    return "-";
}

/// Dump one container exactly as stored (no chain resolution).
void
dumpStored(const snap::CheckpointReader& ckpt)
{
    std::printf("format version : %u\n", ckpt.formatVersion());
    std::printf("config hash    : %016llx\n",
                static_cast<unsigned long long>(ckpt.configHash()));
    std::printf("container      : %zu bytes, hash %016llx\n",
                ckpt.containerSize(),
                static_cast<unsigned long long>(ckpt.containerHash()));
    const auto names = ckpt.sectionNames();
    std::printf("sections       : %zu\n", names.size());
    if (snap::isDeltaCheckpoint(ckpt)) {
        const auto m = snap::readDeltaManifest(ckpt);
        std::printf("delta          : index %llu over base %s "
                    "(index %llu, hash %016llx), chain length %llu, "
                    "%zu logical section(s)\n",
                    static_cast<unsigned long long>(m.index),
                    m.baseFile.c_str(),
                    static_cast<unsigned long long>(m.baseIndex),
                    static_cast<unsigned long long>(m.baseHash),
                    static_cast<unsigned long long>(m.chainLength),
                    m.names.size());
    }
    std::printf("\n");
    for (const auto& name : names) {
        const std::uint8_t flags = ckpt.sectionFlags(name);
        std::string fields = "-";
        // A dict-encoded payload only decodes against its base; its
        // field count is unknowable from this file alone.
        if (!(flags & snap::kSectionDeltaDict))
            fields = std::to_string(readFields(ckpt, name).size());
        std::printf("%-24s %8llu raw %8zu stored  %-7s %5s fields\n",
                    name.c_str(),
                    static_cast<unsigned long long>(ckpt.rawSize(name)),
                    ckpt.storedBytes(name).size(), flagsLabel(flags),
                    fields.c_str());
    }
}

/// Dump a chain-resolved checkpoint, optionally with every field.
void
dumpResolved(const snap::CheckpointReader& ckpt, bool with_fields)
{
    std::printf("config hash    : %016llx\n",
                static_cast<unsigned long long>(ckpt.configHash()));
    const auto names = ckpt.sectionNames();
    std::printf("sections       : %zu\n\n", names.size());
    for (const auto& name : names) {
        const auto fields = readFields(ckpt, name);
        std::printf("%-24s %8zu bytes  %5zu fields\n", name.c_str(),
                    ckpt.sectionBytes(name).size(), fields.size());
        if (with_fields) {
            for (const auto& f : fields)
                std::printf("    %-40s %s\n", f.name.c_str(),
                            f.display().c_str());
        }
    }
}

void
printLineage(const char* tag, const std::vector<snap::ChainHop>& lineage)
{
    if (lineage.size() == 1 && !lineage.front().delta)
        return; // A full checkpoint has no chain worth printing.
    std::printf("%s chain (leaf first):\n%s\n", tag,
                snap::describeChain(lineage).c_str());
}

int
diff(const snap::CheckpointReader& a, const snap::CheckpointReader& b)
{
    int differences = 0;
    if (a.configHash() != b.configHash()) {
        std::printf("config hash: %016llx vs %016llx\n",
                    static_cast<unsigned long long>(a.configHash()),
                    static_cast<unsigned long long>(b.configHash()));
        ++differences;
    }
    // Union of section names, in a's order then b-only extras.
    std::vector<std::string> names = a.sectionNames();
    for (const auto& name : b.sectionNames())
        if (!a.has(name))
            names.push_back(name);
    for (const auto& name : names) {
        if (!a.has(name) || !b.has(name)) {
            std::printf("%s: only in %s\n", name.c_str(),
                        a.has(name) ? "first" : "second");
            ++differences;
            continue;
        }
        // Field values keyed by name; sections are written sequentially
        // so equal states produce equal sequences, but a map keeps the
        // diff readable when one side gains a field.
        const auto fa = readFields(a, name);
        const auto fb = readFields(b, name);
        std::map<std::string, std::string> va, vb;
        for (const auto& f : fa)
            va[f.name] = f.display();
        for (const auto& f : fb)
            vb[f.name] = f.display();
        for (const auto& [field, value] : va) {
            auto it = vb.find(field);
            if (it == vb.end()) {
                std::printf("%s/%s: only in first (%s)\n", name.c_str(),
                            field.c_str(), value.c_str());
                ++differences;
            } else if (it->second != value) {
                std::printf("%s/%s:\n  < %s\n  > %s\n", name.c_str(),
                            field.c_str(), value.c_str(),
                            it->second.c_str());
                ++differences;
            }
        }
        for (const auto& [field, value] : vb) {
            if (!va.count(field)) {
                std::printf("%s/%s: only in second (%s)\n", name.c_str(),
                            field.c_str(), value.c_str());
                ++differences;
            }
        }
    }
    if (differences == 0)
        std::printf("checkpoints are field-identical\n");
    else
        std::printf("%d difference(s)\n", differences);
    return differences == 0 ? 0 : 1;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: snap_inspect [--fields|--chain] <checkpoint>\n"
                 "       snap_inspect --diff <a> <b>\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    bool with_fields = false;
    bool chain = false;
    bool diff_mode = false;
    std::string path_a;
    std::string path_b;
    harness::FlagParser flags(
        "snap_inspect", "Dump or diff .hdtsnap checkpoint files.");
    flags.addSwitch("--fields", &with_fields,
                    "dump every field of the chain-resolved checkpoint");
    flags.addSwitch("--chain", &chain, "print the delta chain lineage");
    flags.addSwitch("--diff", &diff_mode,
                    "field-by-field difference of two checkpoints");
    flags.addPositionalString("checkpoint", &path_a, "checkpoint file");
    flags.addPositionalString("other", &path_b,
                              "second checkpoint (--diff only)");
    flags.parseOrExit(argc, argv);

    // Exactly one mode, with the operand count that mode needs.
    const int modes = int(with_fields) + int(chain) + int(diff_mode);
    if (modes > 1 || path_a.empty() ||
        (diff_mode ? path_b.empty() : !path_b.empty()))
        return usage();

    try {
        if (diff_mode) {
            std::vector<snap::ChainHop> la, lb;
            const auto a = snap::resolveCheckpointChain(path_a, &la);
            const auto b = snap::resolveCheckpointChain(path_b, &lb);
            printLineage("first", la);
            printLineage("second", lb);
            return diff(a, b);
        }
        if (with_fields) {
            std::vector<snap::ChainHop> lineage;
            const auto ckpt =
                snap::resolveCheckpointChain(path_a, &lineage);
            printLineage("checkpoint", lineage);
            dumpResolved(ckpt, true);
            return 0;
        }
        if (chain) {
            std::vector<snap::ChainHop> lineage;
            snap::resolveCheckpointChain(path_a, &lineage);
            std::printf("%s", snap::describeChain(lineage).c_str());
            return 0;
        }
        dumpStored(snap::CheckpointReader(path_a));
        return 0;
    } catch (const util::ModelError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
