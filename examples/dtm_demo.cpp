/**
 * @file
 * DTM demonstration: run a workload through the thermal/performance
 * co-simulation under a chosen policy and watch the temperature timeline.
 *
 *   ./dtm_demo [--policy none|gate|gate-rpm] [--rpm R] [--low-rpm R]
 *              [--requests N] [--faults schedule.ini]
 *              [--checkpoint-every SEC] [--checkpoint-dir D]
 *              [--checkpoint-delta] [--checkpoint-compress]
 *              [--resume-from PATH|DIR]
 *
 * With --faults the demo replays a fault schedule (see docs/faults.md and
 * examples/configs/fan_failure_emergency.ini), reruns the same workload
 * fault-free, and prints an emergency report of what the faults cost.
 *
 * --checkpoint-every SEC writes a crash-consistent checkpoint every SEC
 * simulated seconds to --checkpoint-dir (default ./dtm-checkpoints);
 * --checkpoint-delta writes incremental delta checkpoints between
 * periodic full anchors and --checkpoint-compress LZ-compresses section
 * payloads (both shrink steady-state checkpoint I/O; see
 * docs/checkpoint.md).  --resume-from continues from a checkpoint file
 * (or the latest one in a directory) to a completion bit-identical with
 * the uninterrupted run.
 */
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/config_io.h"
#include "core/scenarios.h"
#include "dtm/cosim.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    util::setLogLevel(util::LogLevel::Warn);
    dtm::DtmPolicy policy = dtm::DtmPolicy::GateRequests;
    double rpm = 24534.0;
    double low_rpm = 0.0;
    std::size_t requests = 20000;
    std::string faults_path;
    double checkpoint_every = 0.0;
    std::string checkpoint_dir = "dtm-checkpoints";
    bool checkpoint_delta = false;
    bool checkpoint_compress = false;
    std::string resume_from;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "none")
                policy = dtm::DtmPolicy::None;
            else if (p == "gate")
                policy = dtm::DtmPolicy::GateRequests;
            else if (p == "gate-rpm")
                policy = dtm::DtmPolicy::GateAndLowRpm;
            else {
                std::cerr << "unknown policy: " << p << "\n";
                return 1;
            }
        } else if (std::strcmp(argv[i], "--rpm") == 0 && i + 1 < argc) {
            rpm = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--low-rpm") == 0 &&
                   i + 1 < argc) {
            low_rpm = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--requests") == 0 &&
                   i + 1 < argc) {
            requests = std::size_t(std::atoll(argv[i + 1]));
            ++i;
        } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
            faults_path = argv[++i];
        } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 &&
                   i + 1 < argc) {
            checkpoint_every = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 &&
                   i + 1 < argc) {
            checkpoint_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--checkpoint-delta") == 0) {
            checkpoint_delta = true;
        } else if (std::strcmp(argv[i], "--checkpoint-compress") == 0) {
            checkpoint_compress = true;
        } else if (std::strcmp(argv[i], "--resume-from") == 0 &&
                   i + 1 < argc) {
            resume_from = argv[++i];
        }
    }
    if (policy == dtm::DtmPolicy::GateAndLowRpm && low_rpm <= 0.0)
        low_rpm = rpm - 15000.0;

    auto scenario = core::figure4Scenario("Search-Engine", requests);
    scenario.system.disk.geometry.diameterInches = 2.6;
    scenario.system.disk.geometry.platters = 1;
    scenario.system.disk.rpm = rpm;
    scenario.system.disk.rpmChangeSecPerKrpm = 0.02;

    dtm::CoSimConfig cfg;
    cfg.system = scenario.system;
    cfg.policy = policy;
    cfg.lowRpm = low_rpm;
    cfg.maxSimulatedSec = 1200.0;
    if (!faults_path.empty())
        cfg.faults = core::loadFaultSchedule(faults_path);

    const trace::SyntheticWorkload gen(scenario.workload);
    const sim::StorageSystem probe(cfg.system);
    const auto trace = gen.generate(probe.logicalSectors()).toRequests();

    std::cout << "DTM demo: Search-Engine-like workload, 2.6\" drive at "
              << rpm << " RPM, policy " << dtm::dtmPolicyName(policy);
    if (policy == dtm::DtmPolicy::GateAndLowRpm)
        std::cout << " (low speed " << low_rpm << " RPM)";
    if (!faults_path.empty())
        std::cout << "\nfault schedule: " << faults_path << " ("
                  << cfg.faults.size() << " events)";
    std::cout << "\n\n";

    dtm::CoSimEngine engine(cfg);
    if (checkpoint_every > 0.0) {
        snap::CheckpointPolicy ckpt_policy;
        ckpt_policy.directory = checkpoint_dir;
        ckpt_policy.everySec = checkpoint_every;
        ckpt_policy.delta = checkpoint_delta;
        ckpt_policy.compress = checkpoint_compress;
        engine.enableCheckpoints(ckpt_policy);
    }
    if (!resume_from.empty()) {
        std::string path = resume_from;
        if (std::filesystem::is_directory(path)) {
            path = snap::latestCheckpoint(path);
            if (path.empty()) {
                std::cerr << "no checkpoint found in " << resume_from
                          << "\n";
                return 1;
            }
        }
        std::cout << "resuming from " << path << "\n\n";
        engine.restoreFromCheckpoint(path, trace);
    } else {
        engine.start(trace);
    }
    engine.advanceToCompletion();
    const auto result = engine.result();

    util::TableWriter table({"metric", "value"});
    table.addRow({"requests completed",
                  util::TableWriter::num(
                      (long long)result.metrics.count())});
    table.addRow({"mean response",
                  util::TableWriter::num(result.metrics.meanMs()) +
                      " ms"});
    table.addRow({"simulated time",
                  util::TableWriter::num(result.simulatedSec, 1) + " s"});
    table.addRow({"mean VCM duty",
                  util::TableWriter::num(result.meanVcmDuty, 3)});
    table.addRow({"mean air temp",
                  util::TableWriter::num(result.meanTempC) + " C"});
    table.addRow({"max air temp",
                  util::TableWriter::num(result.maxTempC) + " C"});
    table.addRow({"time above envelope",
                  util::TableWriter::num(result.envelopeExceededSec, 1) +
                      " s"});
    table.addRow({"time gated",
                  util::TableWriter::num(result.gatedSec, 1) + " s"});
    table.addRow({"gate activations",
                  util::TableWriter::num((long long)result.gateEvents)});
    table.print(std::cout);

    if (!faults_path.empty()) {
        // Rerun the same workload fault-free and report what the
        // emergency cost (latency penalty, fail-safe time, and so on).
        dtm::CoSimConfig clean = cfg;
        clean.faults = fault::FaultSchedule();
        const auto baseline = dtm::CoSimulation(clean).run(trace);
        std::cout << "\nEmergency report (vs fault-free baseline):\n"
                  << fault::formatEmergencyReport(
                         dtm::emergencyReport(result, baseline));
    }
    return 0;
}
