/**
 * @file
 * DTM demonstration: run a workload through the thermal/performance
 * co-simulation under a chosen policy and watch the temperature timeline.
 *
 *   ./dtm_demo [--spec run.ini] [--policy none|gate|gate-rpm|govern]
 *              [--rpm R] [--low-rpm R] [--requests N]
 *              [--faults schedule.ini]
 *              [--checkpoint-every SEC] [--checkpoint-dir D]
 *              [--checkpoint-delta] [--checkpoint-compress]
 *              [--resume-from PATH|DIR]
 *
 * --spec overlays a declarative run description (docs/harness.md,
 * examples/configs/dtm_hot_drive.ini); every other flag overrides the
 * file.  With --faults the demo replays a fault schedule (see
 * docs/faults.md and examples/configs/fan_failure_emergency.ini), reruns
 * the same workload fault-free, and prints an emergency report of what
 * the faults cost.
 *
 * --checkpoint-every SEC writes a crash-consistent checkpoint every SEC
 * simulated seconds to --checkpoint-dir (default ./dtm-checkpoints);
 * --checkpoint-delta writes incremental delta checkpoints between
 * periodic full anchors and --checkpoint-compress LZ-compresses section
 * payloads (both shrink steady-state checkpoint I/O; see
 * docs/checkpoint.md).  --resume-from continues from a checkpoint file
 * (or the latest one in a directory) to a completion bit-identical with
 * the uninterrupted run.
 */
#include <iostream>
#include <string>

#include "dtm/cosim.h"
#include "harness/bench.h"
#include "harness/flags.h"
#include "harness/run_builder.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    util::setLogLevel(util::LogLevel::Warn);
    return harness::guarded([&] {
        // The demo's identity: the paper's hot 2.6" drive spinning above
        // its envelope-safe speed, gated by default.
        harness::RunSpec spec;
        spec.scenario = "Search-Engine";
        spec.requests = 20000;
        spec.policy = "gate";
        spec.rpm = 24534.0;
        spec.maxSimulatedSec = 1200.0;
        spec.checkpoint.directory = "dtm-checkpoints";

        harness::FlagParser flags(
            "dtm_demo",
            "DTM co-simulation of a hot 2.6\" drive under a chosen "
            "policy.");
        harness::applySpecArgs(argc, argv, spec);
        spec.addRunFlags(flags);
        spec.addDtmFlags(flags);
        spec.checkpoint.addFlags(
            flags, harness::CheckpointOptions::Cadence::Seconds);
        flags.parseOrExit(argc, argv);
        const dtm::DtmPolicy policy = spec.dtmPolicy();
        if (policy == dtm::DtmPolicy::GateAndLowRpm && spec.lowRpm <= 0.0)
            spec.lowRpm = spec.rpm - 15000.0;

        harness::RunBuilder builder(
            spec, [](core::ExperimentSpec& e) {
                e.system.disk.geometry.diameterInches = 2.6;
                e.system.disk.geometry.platters = 1;
                e.system.disk.rpmChangeSecPerKrpm = 0.02;
            });
        const auto trace = builder.makeTrace();

        std::cout << "DTM demo: " << spec.scenario
                  << "-like workload, 2.6\" drive at "
                  << builder.cosim().system.disk.rpm << " RPM, policy "
                  << dtm::dtmPolicyName(policy);
        if (policy == dtm::DtmPolicy::GateAndLowRpm)
            std::cout << " (low speed " << spec.lowRpm << " RPM)";
        if (!spec.faultsPath.empty())
            std::cout << "\nfault schedule: " << spec.faultsPath << " ("
                      << builder.cosim().faults.size() << " events)";
        std::cout << "\n\n";

        if (!builder.resumePath().empty())
            std::cout << "resuming from " << builder.resumePath()
                      << "\n\n";
        const auto result = builder.runCoSim(trace);

        util::TableWriter table({"metric", "value"});
        table.addRow({"requests completed",
                      util::TableWriter::num(
                          (long long)result.metrics.count())});
        table.addRow({"mean response",
                      util::TableWriter::num(result.metrics.meanMs()) +
                          " ms"});
        table.addRow({"simulated time",
                      util::TableWriter::num(result.simulatedSec, 1) +
                          " s"});
        table.addRow({"mean VCM duty",
                      util::TableWriter::num(result.meanVcmDuty, 3)});
        table.addRow({"mean air temp",
                      util::TableWriter::num(result.meanTempC) + " C"});
        table.addRow({"max air temp",
                      util::TableWriter::num(result.maxTempC) + " C"});
        table.addRow(
            {"time above envelope",
             util::TableWriter::num(result.envelopeExceededSec, 1) +
                 " s"});
        table.addRow({"time gated",
                      util::TableWriter::num(result.gatedSec, 1) + " s"});
        table.addRow({"gate activations",
                      util::TableWriter::num(
                          (long long)result.gateEvents)});
        table.print(std::cout);

        if (!spec.faultsPath.empty()) {
            // Rerun the same workload fault-free and report what the
            // emergency cost (latency penalty, fail-safe time, etc.).
            const auto baseline = builder.runBaseline(trace);
            std::cout << "\nEmergency report (vs fault-free baseline):\n"
                      << fault::formatEmergencyReport(
                             dtm::emergencyReport(result, baseline));
        }
        return 0;
    });
}
