/**
 * @file
 * Fleet explorer: a rack of throttling drives sharing chassis air.
 *
 * Simulates a small fleet (2 racks x 3 chassis x 8 bays by default) of
 * hot 2.6" drives under DTM gating and prints the per-chassis picture:
 * how the shared air heats up with position in the rack (bottom chassis
 * breathe cold-aisle air, upper ones inherit preheat), and how much
 * throttling each chassis's drives suffered as a result — the
 * data-center version of the paper's single-drive throttling story.
 *
 *   ./fleet_explorer [--spec run.ini]
 *                    [--threads N] [--racks R] [--chassis C] [--bays B]
 *                    [--requests Q] [--seed S]
 *                    [--checkpoint-every K] [--checkpoint-dir D]
 *                    [--checkpoint-delta] [--checkpoint-compress]
 *                    [--resume-from PATH|DIR]
 *
 * --spec overlays a declarative run description (docs/harness.md,
 * examples/configs/fleet_smoke.ini); every other flag overrides the
 * file.  --checkpoint-every K writes a crash-consistent fleet checkpoint
 * to --checkpoint-dir (default ./fleet-checkpoints) every K epoch
 * barriers; --checkpoint-delta writes incremental delta checkpoints
 * between periodic full anchors and --checkpoint-compress LZ-compresses
 * section payloads (see docs/checkpoint.md); --resume-from continues a
 * run from a checkpoint file (or the latest one in a directory) to a
 * bit-identical completion — the "result digest" line printed at the
 * end matches the uninterrupted run's.
 */
#include <cstdio>
#include <iostream>
#include <string>

#include "fleet/fleet_sim.h"
#include "harness/bench.h"
#include "harness/flags.h"
#include "harness/run_builder.h"
#include "snap/state.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

/// FNV-1a digest over every deterministic field of a fleet result
/// (executor scheduling stats excluded): equal digests mean equal runs.
std::uint64_t
resultDigest(const fleet::FleetResult& r)
{
    std::string d;
    char buf[320];
    auto add = [&](const char* fmt, auto... args) {
        std::snprintf(buf, sizeof buf, fmt, args...);
        d += buf;
    };
    add("n=%llu|mean=%.17g|p95=%.17g|max=%.17g|",
        static_cast<unsigned long long>(r.metrics.count()),
        r.meanLatencyMs, r.p95LatencyMs, r.maxDriveTempC);
    add("gates=%llu|speeds=%llu|gated=%.17g|invalid=%llu|fs=%llu|"
        "fs_sec=%.17g|sim=%.17g|epochs=%llu|shards=%d|",
        static_cast<unsigned long long>(r.gateEvents),
        static_cast<unsigned long long>(r.speedChanges), r.gatedSec,
        static_cast<unsigned long long>(r.invalidReadings),
        static_cast<unsigned long long>(r.failSafeActivations),
        r.failSafeSec, r.simulatedSec,
        static_cast<unsigned long long>(r.epochs), r.shards);
    for (const auto& c : r.chassis) {
        add("c%d.%d=%.17g:%.17g:%llu:%.17g|", c.rack, c.chassis,
            c.peakDriveAmbientC, c.peakDriveTempC,
            static_cast<unsigned long long>(c.gateEvents), c.gatedSec);
    }
    return snap::fnv1a64(d.data(), d.size());
}

} // namespace

int
main(int argc, char** argv)
{
    util::setLogLevel(util::LogLevel::Warn);
    return harness::guarded([&] {
        // The fleet's identity: hot 2.6" drives above their envelope-safe
        // speed behind a 27 C cold aisle, gated by DTM.
        harness::RunSpec spec;
        spec.requests = 800;
        spec.policy = "gate";
        spec.rpm = 24534.0;
        spec.racks = 2;
        spec.chassisPerRack = 3;
        spec.baysPerChassis = 8;
        spec.inletC = 27.0; // cold aisle: keeps the hot drive feasible
        spec.seed = 7;
        spec.epochSec = 0.25;
        spec.checkpoint.directory = "fleet-checkpoints";

        harness::FlagParser flags(
            "fleet_explorer",
            "Rack-scale co-simulation of throttling drives sharing "
            "chassis air.");
        harness::applySpecArgs(argc, argv, spec);
        spec.addRunFlags(flags);
        spec.addFleetFlags(flags);
        spec.checkpoint.addFlags(
            flags, harness::CheckpointOptions::Cadence::Epochs);
        flags.parseOrExit(argc, argv);

        harness::RunBuilder builder(
            spec, [](core::ExperimentSpec& e) {
                e.system.disk.geometry.diameterInches = 2.6;
                e.system.disk.geometry.platters = 1;
                e.system.disk.tech = {500e3, 60e3};
                e.workload.arrivalRatePerSec = 100.0;
            });
        const fleet::FleetConfig& cfg = builder.fleet();

        std::printf(
            "fleet: %d rack(s) x %d chassis x %d bays = %d drives, "
            "%zu requests/drive, %d executor thread(s)\n\n",
            cfg.racks, cfg.rack.chassisCount, cfg.chassis.bays,
            cfg.totalBays(), cfg.workload.requests, spec.threads);

        if (!builder.resumePath().empty())
            std::printf("resuming from %s\n\n",
                        builder.resumePath().c_str());
        const fleet::FleetResult result = builder.runFleet();

        util::TableWriter table({"rack", "chassis", "peak ambient C",
                                 "peak drive C", "gate events",
                                 "gated s"});
        char buf[64];
        for (const auto& c : result.chassis) {
            std::vector<std::string> row;
            row.push_back(std::to_string(c.rack));
            row.push_back(std::to_string(c.chassis));
            std::snprintf(buf, sizeof buf, "%.2f", c.peakDriveAmbientC);
            row.push_back(buf);
            std::snprintf(buf, sizeof buf, "%.2f", c.peakDriveTempC);
            row.push_back(buf);
            row.push_back(std::to_string(c.gateEvents));
            std::snprintf(buf, sizeof buf, "%.2f", c.gatedSec);
            row.push_back(buf);
            table.addRow(std::move(row));
        }
        table.print(std::cout);

        std::printf(
            "\nfleet totals: %llu requests, mean %.2f ms, P95 %.2f ms, "
            "peak drive %.2f C, %llu gate events, %.1f s gated\n",
            static_cast<unsigned long long>(result.metrics.count()),
            result.meanLatencyMs, result.p95LatencyMs,
            result.maxDriveTempC,
            static_cast<unsigned long long>(result.gateEvents),
            result.gatedSec);
        std::printf(
            "executor: %llu tasks over %llu epochs, %llu steals\n",
            static_cast<unsigned long long>(result.executor.tasks),
            static_cast<unsigned long long>(result.epochs),
            static_cast<unsigned long long>(result.executor.steals));
        std::printf("result digest: %016llx\n",
                    static_cast<unsigned long long>(resultDigest(result)));
        return 0;
    });
}
