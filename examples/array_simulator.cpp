/**
 * @file
 * Array simulator: drive the storage simulator from an experiment
 * description file, the way DiskSim was driven by .parv files.
 *
 *   ./array_simulator --init spec.ini        # write a starter spec
 *   ./array_simulator spec.ini               # synthesize + replay
 *   ./array_simulator spec.ini --trace t.csv # replay a saved trace
 *   ./array_simulator spec.ini --rpm 20000   # override spindle speed
 */
#include <iostream>

#include "core/config_io.h"
#include "harness/bench.h"
#include "harness/flags.h"
#include "core/energy.h"
#include "sim/latency_log.h"
#include "trace/trace.h"
#include "util/table.h"

using namespace hddtherm;

namespace {

int
writeStarterSpec(const std::string& path)
{
    core::ExperimentSpec spec;
    spec.system.disk.tech = {533e3, 64e3};
    spec.system.disk.rpm = 15000.0;
    spec.system.disks = 4;
    spec.system.raid = sim::RaidLevel::Raid5;
    spec.hasWorkload = true;
    spec.workload.requests = 30000;
    spec.workload.arrivalRatePerSec = 200.0;
    spec.workload.devices = 1;
    if (!core::saveExperimentSpec(spec, path)) {
        std::cerr << "cannot write " << path << "\n";
        return 1;
    }
    std::cout << "starter spec written to " << path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string spec_path;
    std::string trace_path;
    std::string latency_path;
    double rpm_override = 0.0;
    bool init = false;
    harness::FlagParser flags(
        "array_simulator",
        "Drive the storage simulator from an experiment description "
        "file (DiskSim .parv style).");
    flags.addPositionalString("spec.ini", &spec_path,
                              "experiment description file");
    flags.addSwitch("--init", &init,
                    "write a starter spec to the given path and exit");
    flags.addString("--trace", &trace_path, "FILE",
                    "replay a saved trace instead of synthesizing one");
    flags.addString("--latency-log", &latency_path, "FILE",
                    "write per-request latencies as CSV");
    flags.addDouble("--rpm", &rpm_override, "R",
                    "override the spec's spindle speed");
    flags.parseOrExit(argc, argv);
    if (spec_path.empty()) {
        std::cerr << "array_simulator: a spec file is required (try "
                     "--help)\n";
        return 1;
    }
    if (init)
        return writeStarterSpec(spec_path);

    return harness::guarded([&] {
        auto spec = core::loadExperimentSpec(spec_path);
        if (rpm_override > 0.0)
            spec.system.disk.rpm = rpm_override;

        sim::StorageSystem array(spec.system);
        sim::LatencyLog latency_log;
        if (!latency_path.empty()) {
            array.setCompletionCallback(
                [&latency_log](const sim::IoCompletion& c) {
                    latency_log.record(c);
                });
        }
        std::cout << "array: " << spec.system.disks << " x "
                  << spec.system.disk.geometry.diameterInches << "\" @ "
                  << spec.system.disk.rpm << " RPM, "
                  << sim::raidLevelName(spec.system.raid) << ", "
                  << util::TableWriter::num(
                         double(array.logicalSectors()) / 2.0 / 1024.0 /
                             1024.0,
                         1)
                  << " GiB logical\n";

        trace::Trace tr;
        if (!trace_path.empty()) {
            tr = trace::Trace::load(trace_path);
            std::cout << "trace: " << tr.size() << " records from "
                      << trace_path << "\n";
        } else {
            if (!spec.hasWorkload) {
                std::cerr << "spec has no [workload] and no --trace "
                             "given\n";
                return 1;
            }
            tr = trace::SyntheticWorkload(spec.workload)
                     .generate(array.logicalSectors());
            std::cout << "workload: " << tr.size()
                      << " synthetic requests\n";
        }

        const auto metrics = array.run(tr.toRequests());
        const double elapsed = array.events().now();

        std::cout << "\n";
        util::TableWriter table({"metric", "value"});
        table.addRow({"requests",
                      util::TableWriter::num((long long)metrics.count())});
        table.addRow({"mean response",
                      util::TableWriter::num(metrics.meanMs()) + " ms"});
        table.addRow({"p95 (approx)",
                      util::TableWriter::num(
                          metrics.histogram().quantile(0.95), 1) + " ms"});
        const auto cdf = metrics.histogram().cdf();
        table.addRow({"<= 20 ms", util::TableWriter::num(cdf[2], 3)});
        table.addRow({"> 200 ms",
                      util::TableWriter::num(
                          metrics.histogram().overflowFraction(), 3)});

        double energy = 0.0;
        double hits = 0.0, lookups = 0.0;
        for (int d = 0; d < array.diskCount(); ++d) {
            energy += core::accountEnergy(spec.system.disk.geometry,
                                          spec.system.disk.rpm,
                                          array.disk(d).activity(),
                                          elapsed)
                          .totalJ();
            hits += double(array.disk(d).cacheStats().readHits);
            lookups += double(array.disk(d).cacheStats().readHits +
                              array.disk(d).cacheStats().readMisses);
        }
        table.addRow({"array energy",
                      util::TableWriter::num(energy, 0) + " J over " +
                          util::TableWriter::num(elapsed, 1) + " s"});
        table.addRow({"drive-cache hit ratio",
                      util::TableWriter::num(
                          lookups > 0.0 ? hits / lookups : 0.0, 3)});
        double util_sum = 0.0, depth_sum = 0.0;
        for (int d = 0; d < array.diskCount(); ++d) {
            util_sum += array.disk(d).utilization(elapsed);
            depth_sum += array.disk(d).avgQueueDepth(elapsed);
        }
        table.addRow({"mean disk utilization",
                      util::TableWriter::num(
                          util_sum / array.diskCount(), 3)});
        table.addRow({"mean queue depth (L)",
                      util::TableWriter::num(
                          depth_sum / array.diskCount(), 3)});
        table.print(std::cout);
        if (!latency_path.empty()) {
            if (latency_log.writeCsv(latency_path)) {
                std::cout << "\nper-request latencies written to "
                          << latency_path << " (p99 "
                          << util::TableWriter::num(
                                 latency_log.quantileMs(0.99), 1)
                          << " ms)\n";
            } else {
                std::cerr << "cannot write " << latency_path << "\n";
            }
        }
        return 0;
    });
}
