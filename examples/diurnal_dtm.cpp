/**
 * @file
 * Diurnal DTM demonstration: a machine room whose ambient temperature
 * swings over the day (cooling set-points, office hours, a brief HVAC
 * brown-out) while a multi-speed drive serves a steady workload.  The
 * speed governor rides the thermal slack: full speed while the room is
 * cool, automatically stepping down through the ladder as the afternoon
 * peak (or the brown-out) erodes the envelope headroom.
 *
 *   ./diurnal_dtm [--hours H] [--no-governor]
 *
 * The "day" is compressed: one simulated hour of this demo stands for a
 * real hour's ambient change, but the workload runs continuously so the
 * thermal state is always exercised.
 */
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/scenarios.h"
#include "dtm/cosim.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    util::setLogLevel(util::LogLevel::Warn);
    double hours = 2.0;
    bool governed = true;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
            hours = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--no-governor") == 0) {
            governed = false;
        }
    }

    // Workload sized to fill the requested wall-clock window.
    auto scenario = core::figure4Scenario("Search-Engine", 1000);
    scenario.system.disk.geometry.diameterInches = 2.6;
    scenario.system.disk.geometry.platters = 1;
    scenario.system.disk.rpmChangeSecPerKrpm = 0.02;
    scenario.workload.arrivalRatePerSec = 450.0;
    scenario.workload.requests =
        std::size_t(scenario.workload.arrivalRatePerSec * hours * 3600.0);

    dtm::CoSimConfig cfg;
    cfg.system = scenario.system;
    cfg.system.disk.rpm = 24534.0;
    cfg.policy = governed ? dtm::DtmPolicy::GovernSpeed
                          : dtm::DtmPolicy::GateRequests;
    cfg.rpmLadder = {15020.0, 18000.0, 21000.0, 24534.0, 26000.0};
    cfg.maxSimulatedSec = hours * 3600.0 * 4.0;
    // A compressed "day": cool overnight (24 C), warming through the
    // morning, an afternoon HVAC brown-out spike (31 C), recovery.
    const double h = 3600.0;
    cfg.ambientProfile = {{0.0, 24.0},
                          {0.35 * hours * h, 27.0},
                          {0.55 * hours * h, 31.0},
                          {0.70 * hours * h, 28.0},
                          {1.00 * hours * h, 25.0}};

    const auto workload = [&] {
        const trace::SyntheticWorkload gen(scenario.workload);
        const sim::StorageSystem probe(cfg.system);
        return gen.generate(probe.logicalSectors()).toRequests();
    }();

    std::cout << "Diurnal DTM: " << hours
              << "h compressed day, ambient 24->31->25 C, "
              << (governed ? "speed governor (ladder 15-26K RPM)"
                           : "gate-only DTM at 24,534 RPM")
              << "\n\n";

    dtm::CoSimulation cosim(cfg);
    const auto result = cosim.run(workload);

    util::TableWriter table({"metric", "value"});
    table.addRow({"requests completed",
                  util::TableWriter::num(
                      (long long)result.metrics.count())});
    table.addRow({"mean response",
                  util::TableWriter::num(result.metrics.meanMs()) +
                      " ms"});
    table.addRow({"mean air temp",
                  util::TableWriter::num(result.meanTempC) + " C"});
    table.addRow({"max air temp",
                  util::TableWriter::num(result.maxTempC) + " C"});
    table.addRow({"time above envelope",
                  util::TableWriter::num(result.envelopeExceededSec, 1) +
                      " s"});
    table.addRow({"time gated",
                  util::TableWriter::num(result.gatedSec, 1) + " s"});
    table.addRow({"spindle speed changes",
                  util::TableWriter::num(
                      (long long)result.speedChanges)});
    table.print(std::cout);
    std::cout << "\n(try --no-governor to see the gate-only policy cope "
                 "with the afternoon spike instead)\n";
    return 0;
}
