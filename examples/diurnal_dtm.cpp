/**
 * @file
 * Diurnal DTM demonstration: a machine room whose ambient temperature
 * swings over the day (cooling set-points, office hours, a brief HVAC
 * brown-out) while a multi-speed drive serves a steady workload.  The
 * speed governor rides the thermal slack: full speed while the room is
 * cool, automatically stepping down through the ladder as the afternoon
 * peak (or the brown-out) erodes the envelope headroom.
 *
 *   ./diurnal_dtm [--hours H] [--no-governor]
 *
 * The "day" is compressed: one simulated hour of this demo stands for a
 * real hour's ambient change, but the workload runs continuously so the
 * thermal state is always exercised.
 */
#include <iostream>

#include "dtm/cosim.h"
#include "harness/bench.h"
#include "harness/flags.h"
#include "harness/run_builder.h"
#include "util/log.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    util::setLogLevel(util::LogLevel::Warn);
    double hours = 2.0;
    bool no_governor = false;
    harness::FlagParser flags(
        "diurnal_dtm",
        "Speed-governor DTM riding a compressed diurnal ambient swing.");
    flags.addDouble("--hours", &hours, "H", "compressed-day length");
    flags.addSwitch("--no-governor", &no_governor,
                    "gate-only DTM instead of the speed governor");
    flags.parseOrExit(argc, argv);
    const bool governed = !no_governor;

    return harness::guarded([&] {
        // Workload sized to fill the requested wall-clock window.
        harness::RunSpec spec;
        spec.scenario = "Search-Engine";
        spec.requests = std::size_t(450.0 * hours * 3600.0);
        spec.policy = governed ? "govern" : "gate";
        spec.rpm = 24534.0;
        spec.rpmLadder = {15020.0, 18000.0, 21000.0, 24534.0, 26000.0};
        spec.maxSimulatedSec = hours * 3600.0 * 4.0;
        harness::RunBuilder builder(
            spec, [](core::ExperimentSpec& e) {
                e.system.disk.geometry.diameterInches = 2.6;
                e.system.disk.geometry.platters = 1;
                e.system.disk.rpmChangeSecPerKrpm = 0.02;
                e.workload.arrivalRatePerSec = 450.0;
            });

        // A compressed "day": cool overnight (24 C), warming through the
        // morning, an afternoon HVAC brown-out spike (31 C), recovery.
        const double h = 3600.0;
        builder.cosim().ambientProfile = {{0.0, 24.0},
                                          {0.35 * hours * h, 27.0},
                                          {0.55 * hours * h, 31.0},
                                          {0.70 * hours * h, 28.0},
                                          {1.00 * hours * h, 25.0}};

        const auto workload = builder.makeTrace();

        std::cout << "Diurnal DTM: " << hours
                  << "h compressed day, ambient 24->31->25 C, "
                  << (governed ? "speed governor (ladder 15-26K RPM)"
                               : "gate-only DTM at 24,534 RPM")
                  << "\n\n";

        const auto result = builder.runCoSim(workload);

        util::TableWriter table({"metric", "value"});
        table.addRow({"requests completed",
                      util::TableWriter::num(
                          (long long)result.metrics.count())});
        table.addRow({"mean response",
                      util::TableWriter::num(result.metrics.meanMs()) +
                          " ms"});
        table.addRow({"mean air temp",
                      util::TableWriter::num(result.meanTempC) + " C"});
        table.addRow({"max air temp",
                      util::TableWriter::num(result.maxTempC) + " C"});
        table.addRow(
            {"time above envelope",
             util::TableWriter::num(result.envelopeExceededSec, 1) +
                 " s"});
        table.addRow({"time gated",
                      util::TableWriter::num(result.gatedSec, 1) + " s"});
        table.addRow({"spindle speed changes",
                      util::TableWriter::num(
                          (long long)result.speedChanges)});
        table.print(std::cout);
        std::cout << "\n(try --no-governor to see the gate-only policy "
                     "cope with the afternoon spike instead)\n";
        return 0;
    });
}
