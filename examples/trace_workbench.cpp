/**
 * @file
 * Trace workbench: generate a synthetic server workload, characterize it
 * (including the paper's Openmail-style seek-profile statistics), persist
 * it to CSV, and replay it on a configurable disk array.
 *
 *   ./trace_workbench [scenario] [requests] [--save path]
 *
 * scenario is one of: Openmail, OLTP, Search-Engine, TPC-C, TPC-H.
 */
#include <iostream>

#include "core/scenarios.h"
#include "harness/bench.h"
#include "harness/flags.h"
#include "trace/trace.h"
#include "util/table.h"

using namespace hddtherm;

int
main(int argc, char** argv)
{
    std::string name = "Openmail";
    std::size_t requests = 30000;
    std::string save_path;
    harness::FlagParser flags(
        "trace_workbench",
        "Generate, characterize, save, and replay a synthetic server "
        "workload.");
    flags.addPositionalString(
        "scenario", &name,
        "Openmail, OLTP, Search-Engine, TPC-C, or TPC-H");
    flags.addPositionalSizeT("requests", &requests,
                             "workload request count");
    flags.addString("--save", &save_path, "PATH",
                    "persist the generated trace as CSV");
    flags.parseOrExit(argc, argv);

    return harness::guarded([&] {
        const auto scenario = core::figure4Scenario(name, requests);
        const auto trace = scenario.makeTrace();
        const auto stats = trace::analyze(trace);

        std::cout << "Workload '" << scenario.name << "' ("
                  << sim::raidLevelName(scenario.system.raid) << ", "
                  << scenario.system.disks << " disks)\n\n"
                  << "  requests            : " << stats.requests << "\n"
                  << "  duration            : "
                  << util::TableWriter::num(stats.durationSec, 1) << " s ("
                  << util::TableWriter::num(stats.arrivalRatePerSec, 0)
                  << " req/s)\n"
                  << "  read fraction       : "
                  << util::TableWriter::num(stats.readFraction, 3) << "\n"
                  << "  mean request size   : "
                  << util::TableWriter::num(stats.meanSectors / 2.0, 1)
                  << " KB\n"
                  << "  sequential fraction : "
                  << util::TableWriter::num(stats.sequentialFraction, 3)
                  << "\n";

        // Seek-profile statistics against the member-disk layout (the
        // paper quotes 1952 cylinders / 86% arm movement for Openmail).
        const sim::StorageSystem probe(scenario.system);
        const auto seeks =
            trace::analyzeSeeks(trace, probe.disk(0).addressMap());
        std::cout << "  mean seek distance  : "
                  << util::TableWriter::num(seeks.meanSeekCylinders, 0)
                  << " cylinders (logical-volume view)\n"
                  << "  arm movement        : "
                  << util::TableWriter::num(
                         100.0 * seeks.armMovementFraction, 1)
                  << "% of requests\n\n";

        if (!save_path.empty()) {
            if (trace.save(save_path))
                std::cout << "trace saved to " << save_path << "\n\n";
            else
                std::cerr << "failed to save trace to " << save_path
                          << "\n";
        }

        std::cout << "Replaying at the baseline "
                  << scenario.baseRpm << " RPM...\n";
        const auto metrics = scenario.run(scenario.baseRpm, requests);
        const auto cdf = metrics.histogram().cdf();
        util::TableWriter table({"metric", "value"});
        table.addRow({"mean response",
                      util::TableWriter::num(metrics.meanMs()) + " ms"});
        table.addRow(
            {"p95 (approx)",
             util::TableWriter::num(
                 metrics.histogram().quantile(0.95), 1) + " ms"});
        table.addRow({"<= 20 ms", util::TableWriter::num(cdf[2], 3)});
        table.addRow({"<= 60 ms", util::TableWriter::num(cdf[4], 3)});
        table.addRow({"> 200 ms",
                      util::TableWriter::num(
                          metrics.histogram().overflowFraction(), 3)});
        table.print(std::cout);
        return 0;
    });
}
