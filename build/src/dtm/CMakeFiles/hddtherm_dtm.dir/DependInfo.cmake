
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtm/cosim.cc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/cosim.cc.o" "gcc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/cosim.cc.o.d"
  "/root/repo/src/dtm/governor.cc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/governor.cc.o" "gcc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/governor.cc.o.d"
  "/root/repo/src/dtm/mirror.cc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/mirror.cc.o" "gcc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/mirror.cc.o.d"
  "/root/repo/src/dtm/slack.cc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/slack.cc.o" "gcc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/slack.cc.o.d"
  "/root/repo/src/dtm/spindown.cc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/spindown.cc.o" "gcc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/spindown.cc.o.d"
  "/root/repo/src/dtm/throttle.cc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/throttle.cc.o" "gcc" "src/dtm/CMakeFiles/hddtherm_dtm.dir/throttle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadmap/CMakeFiles/hddtherm_roadmap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hddtherm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/hddtherm_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hddtherm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hdd/CMakeFiles/hddtherm_hdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
