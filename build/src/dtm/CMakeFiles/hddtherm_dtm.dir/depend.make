# Empty dependencies file for hddtherm_dtm.
# This may be replaced when dependencies are built.
