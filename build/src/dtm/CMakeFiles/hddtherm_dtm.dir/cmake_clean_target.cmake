file(REMOVE_RECURSE
  "libhddtherm_dtm.a"
)
