file(REMOVE_RECURSE
  "CMakeFiles/hddtherm_dtm.dir/cosim.cc.o"
  "CMakeFiles/hddtherm_dtm.dir/cosim.cc.o.d"
  "CMakeFiles/hddtherm_dtm.dir/governor.cc.o"
  "CMakeFiles/hddtherm_dtm.dir/governor.cc.o.d"
  "CMakeFiles/hddtherm_dtm.dir/mirror.cc.o"
  "CMakeFiles/hddtherm_dtm.dir/mirror.cc.o.d"
  "CMakeFiles/hddtherm_dtm.dir/slack.cc.o"
  "CMakeFiles/hddtherm_dtm.dir/slack.cc.o.d"
  "CMakeFiles/hddtherm_dtm.dir/spindown.cc.o"
  "CMakeFiles/hddtherm_dtm.dir/spindown.cc.o.d"
  "CMakeFiles/hddtherm_dtm.dir/throttle.cc.o"
  "CMakeFiles/hddtherm_dtm.dir/throttle.cc.o.d"
  "libhddtherm_dtm.a"
  "libhddtherm_dtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddtherm_dtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
