# Empty compiler generated dependencies file for hddtherm_util.
# This may be replaced when dependencies are built.
