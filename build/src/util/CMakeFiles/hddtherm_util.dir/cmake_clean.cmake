file(REMOVE_RECURSE
  "CMakeFiles/hddtherm_util.dir/ascii_plot.cc.o"
  "CMakeFiles/hddtherm_util.dir/ascii_plot.cc.o.d"
  "CMakeFiles/hddtherm_util.dir/interp.cc.o"
  "CMakeFiles/hddtherm_util.dir/interp.cc.o.d"
  "CMakeFiles/hddtherm_util.dir/log.cc.o"
  "CMakeFiles/hddtherm_util.dir/log.cc.o.d"
  "CMakeFiles/hddtherm_util.dir/random.cc.o"
  "CMakeFiles/hddtherm_util.dir/random.cc.o.d"
  "CMakeFiles/hddtherm_util.dir/roots.cc.o"
  "CMakeFiles/hddtherm_util.dir/roots.cc.o.d"
  "CMakeFiles/hddtherm_util.dir/stats.cc.o"
  "CMakeFiles/hddtherm_util.dir/stats.cc.o.d"
  "CMakeFiles/hddtherm_util.dir/table.cc.o"
  "CMakeFiles/hddtherm_util.dir/table.cc.o.d"
  "libhddtherm_util.a"
  "libhddtherm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddtherm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
