file(REMOVE_RECURSE
  "libhddtherm_util.a"
)
