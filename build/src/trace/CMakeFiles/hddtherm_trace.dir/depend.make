# Empty dependencies file for hddtherm_trace.
# This may be replaced when dependencies are built.
