
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/placement.cc" "src/trace/CMakeFiles/hddtherm_trace.dir/placement.cc.o" "gcc" "src/trace/CMakeFiles/hddtherm_trace.dir/placement.cc.o.d"
  "/root/repo/src/trace/synth.cc" "src/trace/CMakeFiles/hddtherm_trace.dir/synth.cc.o" "gcc" "src/trace/CMakeFiles/hddtherm_trace.dir/synth.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/hddtherm_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/hddtherm_trace.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hddtherm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hddtherm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hdd/CMakeFiles/hddtherm_hdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
