file(REMOVE_RECURSE
  "libhddtherm_trace.a"
)
