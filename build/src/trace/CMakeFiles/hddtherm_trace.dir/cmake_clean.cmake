file(REMOVE_RECURSE
  "CMakeFiles/hddtherm_trace.dir/placement.cc.o"
  "CMakeFiles/hddtherm_trace.dir/placement.cc.o.d"
  "CMakeFiles/hddtherm_trace.dir/synth.cc.o"
  "CMakeFiles/hddtherm_trace.dir/synth.cc.o.d"
  "CMakeFiles/hddtherm_trace.dir/trace.cc.o"
  "CMakeFiles/hddtherm_trace.dir/trace.cc.o.d"
  "libhddtherm_trace.a"
  "libhddtherm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddtherm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
