file(REMOVE_RECURSE
  "CMakeFiles/hddtherm_core.dir/config_io.cc.o"
  "CMakeFiles/hddtherm_core.dir/config_io.cc.o.d"
  "CMakeFiles/hddtherm_core.dir/energy.cc.o"
  "CMakeFiles/hddtherm_core.dir/energy.cc.o.d"
  "CMakeFiles/hddtherm_core.dir/integrated.cc.o"
  "CMakeFiles/hddtherm_core.dir/integrated.cc.o.d"
  "CMakeFiles/hddtherm_core.dir/scenarios.cc.o"
  "CMakeFiles/hddtherm_core.dir/scenarios.cc.o.d"
  "libhddtherm_core.a"
  "libhddtherm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddtherm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
