file(REMOVE_RECURSE
  "libhddtherm_core.a"
)
