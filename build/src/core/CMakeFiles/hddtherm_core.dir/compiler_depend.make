# Empty compiler generated dependencies file for hddtherm_core.
# This may be replaced when dependencies are built.
