file(REMOVE_RECURSE
  "libhddtherm_hdd.a"
)
