
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdd/capacity.cc" "src/hdd/CMakeFiles/hddtherm_hdd.dir/capacity.cc.o" "gcc" "src/hdd/CMakeFiles/hddtherm_hdd.dir/capacity.cc.o.d"
  "/root/repo/src/hdd/drive_catalog.cc" "src/hdd/CMakeFiles/hddtherm_hdd.dir/drive_catalog.cc.o" "gcc" "src/hdd/CMakeFiles/hddtherm_hdd.dir/drive_catalog.cc.o.d"
  "/root/repo/src/hdd/seek.cc" "src/hdd/CMakeFiles/hddtherm_hdd.dir/seek.cc.o" "gcc" "src/hdd/CMakeFiles/hddtherm_hdd.dir/seek.cc.o.d"
  "/root/repo/src/hdd/zoning.cc" "src/hdd/CMakeFiles/hddtherm_hdd.dir/zoning.cc.o" "gcc" "src/hdd/CMakeFiles/hddtherm_hdd.dir/zoning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hddtherm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
