# Empty dependencies file for hddtherm_hdd.
# This may be replaced when dependencies are built.
