file(REMOVE_RECURSE
  "CMakeFiles/hddtherm_hdd.dir/capacity.cc.o"
  "CMakeFiles/hddtherm_hdd.dir/capacity.cc.o.d"
  "CMakeFiles/hddtherm_hdd.dir/drive_catalog.cc.o"
  "CMakeFiles/hddtherm_hdd.dir/drive_catalog.cc.o.d"
  "CMakeFiles/hddtherm_hdd.dir/seek.cc.o"
  "CMakeFiles/hddtherm_hdd.dir/seek.cc.o.d"
  "CMakeFiles/hddtherm_hdd.dir/zoning.cc.o"
  "CMakeFiles/hddtherm_hdd.dir/zoning.cc.o.d"
  "libhddtherm_hdd.a"
  "libhddtherm_hdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddtherm_hdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
