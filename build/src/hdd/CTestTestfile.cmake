# CMake generated Testfile for 
# Source directory: /root/repo/src/hdd
# Build directory: /root/repo/build/src/hdd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
