file(REMOVE_RECURSE
  "CMakeFiles/hddtherm_thermal.dir/calibration.cc.o"
  "CMakeFiles/hddtherm_thermal.dir/calibration.cc.o.d"
  "CMakeFiles/hddtherm_thermal.dir/correlations.cc.o"
  "CMakeFiles/hddtherm_thermal.dir/correlations.cc.o.d"
  "CMakeFiles/hddtherm_thermal.dir/drive_thermal.cc.o"
  "CMakeFiles/hddtherm_thermal.dir/drive_thermal.cc.o.d"
  "CMakeFiles/hddtherm_thermal.dir/envelope.cc.o"
  "CMakeFiles/hddtherm_thermal.dir/envelope.cc.o.d"
  "CMakeFiles/hddtherm_thermal.dir/network.cc.o"
  "CMakeFiles/hddtherm_thermal.dir/network.cc.o.d"
  "CMakeFiles/hddtherm_thermal.dir/reliability.cc.o"
  "CMakeFiles/hddtherm_thermal.dir/reliability.cc.o.d"
  "libhddtherm_thermal.a"
  "libhddtherm_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddtherm_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
