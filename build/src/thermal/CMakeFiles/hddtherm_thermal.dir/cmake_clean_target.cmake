file(REMOVE_RECURSE
  "libhddtherm_thermal.a"
)
