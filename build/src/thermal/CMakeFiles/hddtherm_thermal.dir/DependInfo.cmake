
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/calibration.cc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/calibration.cc.o" "gcc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/calibration.cc.o.d"
  "/root/repo/src/thermal/correlations.cc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/correlations.cc.o" "gcc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/correlations.cc.o.d"
  "/root/repo/src/thermal/drive_thermal.cc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/drive_thermal.cc.o" "gcc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/drive_thermal.cc.o.d"
  "/root/repo/src/thermal/envelope.cc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/envelope.cc.o" "gcc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/envelope.cc.o.d"
  "/root/repo/src/thermal/network.cc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/network.cc.o" "gcc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/network.cc.o.d"
  "/root/repo/src/thermal/reliability.cc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/reliability.cc.o" "gcc" "src/thermal/CMakeFiles/hddtherm_thermal.dir/reliability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdd/CMakeFiles/hddtherm_hdd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hddtherm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
