# Empty compiler generated dependencies file for hddtherm_thermal.
# This may be replaced when dependencies are built.
