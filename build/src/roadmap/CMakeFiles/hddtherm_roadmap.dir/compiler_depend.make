# Empty compiler generated dependencies file for hddtherm_roadmap.
# This may be replaced when dependencies are built.
