file(REMOVE_RECURSE
  "libhddtherm_roadmap.a"
)
