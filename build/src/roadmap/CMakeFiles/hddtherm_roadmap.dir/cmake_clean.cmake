file(REMOVE_RECURSE
  "CMakeFiles/hddtherm_roadmap.dir/planner.cc.o"
  "CMakeFiles/hddtherm_roadmap.dir/planner.cc.o.d"
  "CMakeFiles/hddtherm_roadmap.dir/roadmap.cc.o"
  "CMakeFiles/hddtherm_roadmap.dir/roadmap.cc.o.d"
  "CMakeFiles/hddtherm_roadmap.dir/scaling.cc.o"
  "CMakeFiles/hddtherm_roadmap.dir/scaling.cc.o.d"
  "libhddtherm_roadmap.a"
  "libhddtherm_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddtherm_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
