file(REMOVE_RECURSE
  "libhddtherm_sim.a"
)
