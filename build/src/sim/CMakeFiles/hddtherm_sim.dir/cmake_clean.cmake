file(REMOVE_RECURSE
  "CMakeFiles/hddtherm_sim.dir/address_map.cc.o"
  "CMakeFiles/hddtherm_sim.dir/address_map.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/cache.cc.o"
  "CMakeFiles/hddtherm_sim.dir/cache.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/closed_loop.cc.o"
  "CMakeFiles/hddtherm_sim.dir/closed_loop.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/disk.cc.o"
  "CMakeFiles/hddtherm_sim.dir/disk.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/event.cc.o"
  "CMakeFiles/hddtherm_sim.dir/event.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/hybrid.cc.o"
  "CMakeFiles/hddtherm_sim.dir/hybrid.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/latency_log.cc.o"
  "CMakeFiles/hddtherm_sim.dir/latency_log.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/mechanics.cc.o"
  "CMakeFiles/hddtherm_sim.dir/mechanics.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/raid.cc.o"
  "CMakeFiles/hddtherm_sim.dir/raid.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/scheduler.cc.o"
  "CMakeFiles/hddtherm_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/hddtherm_sim.dir/storage_system.cc.o"
  "CMakeFiles/hddtherm_sim.dir/storage_system.cc.o.d"
  "libhddtherm_sim.a"
  "libhddtherm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddtherm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
