# Empty compiler generated dependencies file for hddtherm_sim.
# This may be replaced when dependencies are built.
