
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_map.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/address_map.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/address_map.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/closed_loop.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/closed_loop.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/closed_loop.cc.o.d"
  "/root/repo/src/sim/disk.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/disk.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/disk.cc.o.d"
  "/root/repo/src/sim/event.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/event.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/event.cc.o.d"
  "/root/repo/src/sim/hybrid.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/hybrid.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/hybrid.cc.o.d"
  "/root/repo/src/sim/latency_log.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/latency_log.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/latency_log.cc.o.d"
  "/root/repo/src/sim/mechanics.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/mechanics.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/mechanics.cc.o.d"
  "/root/repo/src/sim/raid.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/raid.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/raid.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/storage_system.cc" "src/sim/CMakeFiles/hddtherm_sim.dir/storage_system.cc.o" "gcc" "src/sim/CMakeFiles/hddtherm_sim.dir/storage_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdd/CMakeFiles/hddtherm_hdd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hddtherm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
