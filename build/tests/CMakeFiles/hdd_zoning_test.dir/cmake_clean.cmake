file(REMOVE_RECURSE
  "CMakeFiles/hdd_zoning_test.dir/hdd_zoning_test.cc.o"
  "CMakeFiles/hdd_zoning_test.dir/hdd_zoning_test.cc.o.d"
  "hdd_zoning_test"
  "hdd_zoning_test.pdb"
  "hdd_zoning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_zoning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
