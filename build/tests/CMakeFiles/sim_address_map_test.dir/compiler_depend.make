# Empty compiler generated dependencies file for sim_address_map_test.
# This may be replaced when dependencies are built.
