file(REMOVE_RECURSE
  "CMakeFiles/sim_address_map_test.dir/sim_address_map_test.cc.o"
  "CMakeFiles/sim_address_map_test.dir/sim_address_map_test.cc.o.d"
  "sim_address_map_test"
  "sim_address_map_test.pdb"
  "sim_address_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_address_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
