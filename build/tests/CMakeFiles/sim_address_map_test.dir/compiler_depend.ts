# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sim_address_map_test.
