# Empty compiler generated dependencies file for dtm_test.
# This may be replaced when dependencies are built.
