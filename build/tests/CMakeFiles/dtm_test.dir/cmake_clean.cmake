file(REMOVE_RECURSE
  "CMakeFiles/dtm_test.dir/dtm_test.cc.o"
  "CMakeFiles/dtm_test.dir/dtm_test.cc.o.d"
  "dtm_test"
  "dtm_test.pdb"
  "dtm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
