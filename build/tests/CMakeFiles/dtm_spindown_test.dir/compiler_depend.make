# Empty compiler generated dependencies file for dtm_spindown_test.
# This may be replaced when dependencies are built.
