file(REMOVE_RECURSE
  "CMakeFiles/dtm_spindown_test.dir/dtm_spindown_test.cc.o"
  "CMakeFiles/dtm_spindown_test.dir/dtm_spindown_test.cc.o.d"
  "dtm_spindown_test"
  "dtm_spindown_test.pdb"
  "dtm_spindown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtm_spindown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
