# Empty compiler generated dependencies file for feature_extras_test.
# This may be replaced when dependencies are built.
