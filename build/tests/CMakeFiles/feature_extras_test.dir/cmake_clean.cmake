file(REMOVE_RECURSE
  "CMakeFiles/feature_extras_test.dir/feature_extras_test.cc.o"
  "CMakeFiles/feature_extras_test.dir/feature_extras_test.cc.o.d"
  "feature_extras_test"
  "feature_extras_test.pdb"
  "feature_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
