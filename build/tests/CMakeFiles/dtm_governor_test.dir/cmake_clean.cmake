file(REMOVE_RECURSE
  "CMakeFiles/dtm_governor_test.dir/dtm_governor_test.cc.o"
  "CMakeFiles/dtm_governor_test.dir/dtm_governor_test.cc.o.d"
  "dtm_governor_test"
  "dtm_governor_test.pdb"
  "dtm_governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtm_governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
