# Empty dependencies file for dtm_governor_test.
# This may be replaced when dependencies are built.
