file(REMOVE_RECURSE
  "CMakeFiles/sim_raid1_test.dir/sim_raid1_test.cc.o"
  "CMakeFiles/sim_raid1_test.dir/sim_raid1_test.cc.o.d"
  "sim_raid1_test"
  "sim_raid1_test.pdb"
  "sim_raid1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_raid1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
