# Empty dependencies file for sim_raid1_test.
# This may be replaced when dependencies are built.
