file(REMOVE_RECURSE
  "CMakeFiles/sim_hybrid_test.dir/sim_hybrid_test.cc.o"
  "CMakeFiles/sim_hybrid_test.dir/sim_hybrid_test.cc.o.d"
  "sim_hybrid_test"
  "sim_hybrid_test.pdb"
  "sim_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
