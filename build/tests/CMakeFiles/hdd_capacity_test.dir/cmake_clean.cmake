file(REMOVE_RECURSE
  "CMakeFiles/hdd_capacity_test.dir/hdd_capacity_test.cc.o"
  "CMakeFiles/hdd_capacity_test.dir/hdd_capacity_test.cc.o.d"
  "hdd_capacity_test"
  "hdd_capacity_test.pdb"
  "hdd_capacity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
