# Empty compiler generated dependencies file for hdd_capacity_test.
# This may be replaced when dependencies are built.
