file(REMOVE_RECURSE
  "CMakeFiles/sim_closed_loop_test.dir/sim_closed_loop_test.cc.o"
  "CMakeFiles/sim_closed_loop_test.dir/sim_closed_loop_test.cc.o.d"
  "sim_closed_loop_test"
  "sim_closed_loop_test.pdb"
  "sim_closed_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_closed_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
