file(REMOVE_RECURSE
  "CMakeFiles/trace_placement_test.dir/trace_placement_test.cc.o"
  "CMakeFiles/trace_placement_test.dir/trace_placement_test.cc.o.d"
  "trace_placement_test"
  "trace_placement_test.pdb"
  "trace_placement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
