# Empty compiler generated dependencies file for trace_placement_test.
# This may be replaced when dependencies are built.
