file(REMOVE_RECURSE
  "CMakeFiles/sim_mechanics_test.dir/sim_mechanics_test.cc.o"
  "CMakeFiles/sim_mechanics_test.dir/sim_mechanics_test.cc.o.d"
  "sim_mechanics_test"
  "sim_mechanics_test.pdb"
  "sim_mechanics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_mechanics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
