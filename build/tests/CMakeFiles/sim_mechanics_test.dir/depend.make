# Empty dependencies file for sim_mechanics_test.
# This may be replaced when dependencies are built.
