# Empty dependencies file for sim_raid_test.
# This may be replaced when dependencies are built.
