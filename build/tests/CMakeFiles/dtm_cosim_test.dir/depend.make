# Empty dependencies file for dtm_cosim_test.
# This may be replaced when dependencies are built.
