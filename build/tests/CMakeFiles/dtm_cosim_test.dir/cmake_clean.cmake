file(REMOVE_RECURSE
  "CMakeFiles/dtm_cosim_test.dir/dtm_cosim_test.cc.o"
  "CMakeFiles/dtm_cosim_test.dir/dtm_cosim_test.cc.o.d"
  "dtm_cosim_test"
  "dtm_cosim_test.pdb"
  "dtm_cosim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtm_cosim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
