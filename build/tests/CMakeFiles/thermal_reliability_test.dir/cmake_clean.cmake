file(REMOVE_RECURSE
  "CMakeFiles/thermal_reliability_test.dir/thermal_reliability_test.cc.o"
  "CMakeFiles/thermal_reliability_test.dir/thermal_reliability_test.cc.o.d"
  "thermal_reliability_test"
  "thermal_reliability_test.pdb"
  "thermal_reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
