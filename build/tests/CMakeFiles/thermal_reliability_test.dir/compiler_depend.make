# Empty compiler generated dependencies file for thermal_reliability_test.
# This may be replaced when dependencies are built.
