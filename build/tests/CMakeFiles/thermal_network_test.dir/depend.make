# Empty dependencies file for thermal_network_test.
# This may be replaced when dependencies are built.
