file(REMOVE_RECURSE
  "CMakeFiles/thermal_network_test.dir/thermal_network_test.cc.o"
  "CMakeFiles/thermal_network_test.dir/thermal_network_test.cc.o.d"
  "thermal_network_test"
  "thermal_network_test.pdb"
  "thermal_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
