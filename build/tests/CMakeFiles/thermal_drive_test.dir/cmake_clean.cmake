file(REMOVE_RECURSE
  "CMakeFiles/thermal_drive_test.dir/thermal_drive_test.cc.o"
  "CMakeFiles/thermal_drive_test.dir/thermal_drive_test.cc.o.d"
  "thermal_drive_test"
  "thermal_drive_test.pdb"
  "thermal_drive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_drive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
