# Empty dependencies file for thermal_drive_test.
# This may be replaced when dependencies are built.
