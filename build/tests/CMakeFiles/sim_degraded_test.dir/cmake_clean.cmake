file(REMOVE_RECURSE
  "CMakeFiles/sim_degraded_test.dir/sim_degraded_test.cc.o"
  "CMakeFiles/sim_degraded_test.dir/sim_degraded_test.cc.o.d"
  "sim_degraded_test"
  "sim_degraded_test.pdb"
  "sim_degraded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_degraded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
