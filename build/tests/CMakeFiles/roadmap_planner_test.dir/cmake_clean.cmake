file(REMOVE_RECURSE
  "CMakeFiles/roadmap_planner_test.dir/roadmap_planner_test.cc.o"
  "CMakeFiles/roadmap_planner_test.dir/roadmap_planner_test.cc.o.d"
  "roadmap_planner_test"
  "roadmap_planner_test.pdb"
  "roadmap_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadmap_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
