file(REMOVE_RECURSE
  "CMakeFiles/hdd_seek_test.dir/hdd_seek_test.cc.o"
  "CMakeFiles/hdd_seek_test.dir/hdd_seek_test.cc.o.d"
  "hdd_seek_test"
  "hdd_seek_test.pdb"
  "hdd_seek_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_seek_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
