# Empty compiler generated dependencies file for hdd_seek_test.
# This may be replaced when dependencies are built.
