file(REMOVE_RECURSE
  "CMakeFiles/util_interp_test.dir/util_interp_test.cc.o"
  "CMakeFiles/util_interp_test.dir/util_interp_test.cc.o.d"
  "util_interp_test"
  "util_interp_test.pdb"
  "util_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
