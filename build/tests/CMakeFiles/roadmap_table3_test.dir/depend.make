# Empty dependencies file for roadmap_table3_test.
# This may be replaced when dependencies are built.
