file(REMOVE_RECURSE
  "CMakeFiles/roadmap_table3_test.dir/roadmap_table3_test.cc.o"
  "CMakeFiles/roadmap_table3_test.dir/roadmap_table3_test.cc.o.d"
  "roadmap_table3_test"
  "roadmap_table3_test.pdb"
  "roadmap_table3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadmap_table3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
