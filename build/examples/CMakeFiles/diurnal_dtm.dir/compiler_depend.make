# Empty compiler generated dependencies file for diurnal_dtm.
# This may be replaced when dependencies are built.
