file(REMOVE_RECURSE
  "CMakeFiles/diurnal_dtm.dir/diurnal_dtm.cpp.o"
  "CMakeFiles/diurnal_dtm.dir/diurnal_dtm.cpp.o.d"
  "diurnal_dtm"
  "diurnal_dtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diurnal_dtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
