file(REMOVE_RECURSE
  "CMakeFiles/array_simulator.dir/array_simulator.cpp.o"
  "CMakeFiles/array_simulator.dir/array_simulator.cpp.o.d"
  "array_simulator"
  "array_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
