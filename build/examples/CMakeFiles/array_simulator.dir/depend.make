# Empty dependencies file for array_simulator.
# This may be replaced when dependencies are built.
