# Empty dependencies file for roadmap_explorer.
# This may be replaced when dependencies are built.
