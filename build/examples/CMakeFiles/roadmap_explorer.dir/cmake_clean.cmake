file(REMOVE_RECURSE
  "CMakeFiles/roadmap_explorer.dir/roadmap_explorer.cpp.o"
  "CMakeFiles/roadmap_explorer.dir/roadmap_explorer.cpp.o.d"
  "roadmap_explorer"
  "roadmap_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadmap_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
