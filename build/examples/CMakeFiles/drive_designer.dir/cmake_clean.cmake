file(REMOVE_RECURSE
  "CMakeFiles/drive_designer.dir/drive_designer.cpp.o"
  "CMakeFiles/drive_designer.dir/drive_designer.cpp.o.d"
  "drive_designer"
  "drive_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
