# Empty compiler generated dependencies file for drive_designer.
# This may be replaced when dependencies are built.
