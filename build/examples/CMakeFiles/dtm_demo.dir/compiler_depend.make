# Empty compiler generated dependencies file for dtm_demo.
# This may be replaced when dependencies are built.
