file(REMOVE_RECURSE
  "CMakeFiles/dtm_demo.dir/dtm_demo.cpp.o"
  "CMakeFiles/dtm_demo.dir/dtm_demo.cpp.o.d"
  "dtm_demo"
  "dtm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
