file(REMOVE_RECURSE
  "../bench/bench_degraded_raid"
  "../bench/bench_degraded_raid.pdb"
  "CMakeFiles/bench_degraded_raid.dir/bench_degraded_raid.cc.o"
  "CMakeFiles/bench_degraded_raid.dir/bench_degraded_raid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degraded_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
