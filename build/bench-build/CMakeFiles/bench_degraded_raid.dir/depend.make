# Empty dependencies file for bench_degraded_raid.
# This may be replaced when dependencies are built.
