# Empty dependencies file for bench_mirror_dtm.
# This may be replaced when dependencies are built.
