file(REMOVE_RECURSE
  "../bench/bench_mirror_dtm"
  "../bench/bench_mirror_dtm.pdb"
  "CMakeFiles/bench_mirror_dtm.dir/bench_mirror_dtm.cc.o"
  "CMakeFiles/bench_mirror_dtm.dir/bench_mirror_dtm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mirror_dtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
