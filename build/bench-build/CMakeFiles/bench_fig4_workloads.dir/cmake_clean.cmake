file(REMOVE_RECURSE
  "../bench/bench_fig4_workloads"
  "../bench/bench_fig4_workloads.pdb"
  "CMakeFiles/bench_fig4_workloads.dir/bench_fig4_workloads.cc.o"
  "CMakeFiles/bench_fig4_workloads.dir/bench_fig4_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
