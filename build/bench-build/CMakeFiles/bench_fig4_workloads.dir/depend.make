# Empty dependencies file for bench_fig4_workloads.
# This may be replaced when dependencies are built.
