# Empty compiler generated dependencies file for bench_fig6_throttle_traces.
# This may be replaced when dependencies are built.
