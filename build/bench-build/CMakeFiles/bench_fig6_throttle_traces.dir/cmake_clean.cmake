file(REMOVE_RECURSE
  "../bench/bench_fig6_throttle_traces"
  "../bench/bench_fig6_throttle_traces.pdb"
  "CMakeFiles/bench_fig6_throttle_traces.dir/bench_fig6_throttle_traces.cc.o"
  "CMakeFiles/bench_fig6_throttle_traces.dir/bench_fig6_throttle_traces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_throttle_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
