file(REMOVE_RECURSE
  "../bench/bench_fig2_roadmap"
  "../bench/bench_fig2_roadmap.pdb"
  "CMakeFiles/bench_fig2_roadmap.dir/bench_fig2_roadmap.cc.o"
  "CMakeFiles/bench_fig2_roadmap.dir/bench_fig2_roadmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
