# Empty dependencies file for bench_fig2_roadmap.
# This may be replaced when dependencies are built.
