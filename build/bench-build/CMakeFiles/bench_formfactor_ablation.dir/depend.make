# Empty dependencies file for bench_formfactor_ablation.
# This may be replaced when dependencies are built.
