file(REMOVE_RECURSE
  "../bench/bench_formfactor_ablation"
  "../bench/bench_formfactor_ablation.pdb"
  "CMakeFiles/bench_formfactor_ablation.dir/bench_formfactor_ablation.cc.o"
  "CMakeFiles/bench_formfactor_ablation.dir/bench_formfactor_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formfactor_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
