# Empty compiler generated dependencies file for bench_dtm_reliability.
# This may be replaced when dependencies are built.
