file(REMOVE_RECURSE
  "../bench/bench_dtm_reliability"
  "../bench/bench_dtm_reliability.pdb"
  "CMakeFiles/bench_dtm_reliability.dir/bench_dtm_reliability.cc.o"
  "CMakeFiles/bench_dtm_reliability.dir/bench_dtm_reliability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dtm_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
