file(REMOVE_RECURSE
  "../bench/bench_fig5_slack"
  "../bench/bench_fig5_slack.pdb"
  "CMakeFiles/bench_fig5_slack.dir/bench_fig5_slack.cc.o"
  "CMakeFiles/bench_fig5_slack.dir/bench_fig5_slack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
