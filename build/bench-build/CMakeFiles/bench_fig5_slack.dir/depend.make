# Empty dependencies file for bench_fig5_slack.
# This may be replaced when dependencies are built.
