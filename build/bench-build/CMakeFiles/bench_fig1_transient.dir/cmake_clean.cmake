file(REMOVE_RECURSE
  "../bench/bench_fig1_transient"
  "../bench/bench_fig1_transient.pdb"
  "CMakeFiles/bench_fig1_transient.dir/bench_fig1_transient.cc.o"
  "CMakeFiles/bench_fig1_transient.dir/bench_fig1_transient.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
