file(REMOVE_RECURSE
  "../bench/bench_spindown"
  "../bench/bench_spindown.pdb"
  "CMakeFiles/bench_spindown.dir/bench_spindown.cc.o"
  "CMakeFiles/bench_spindown.dir/bench_spindown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spindown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
