# Empty dependencies file for bench_spindown.
# This may be replaced when dependencies are built.
