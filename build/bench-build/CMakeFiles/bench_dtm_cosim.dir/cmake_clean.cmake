file(REMOVE_RECURSE
  "../bench/bench_dtm_cosim"
  "../bench/bench_dtm_cosim.pdb"
  "CMakeFiles/bench_dtm_cosim.dir/bench_dtm_cosim.cc.o"
  "CMakeFiles/bench_dtm_cosim.dir/bench_dtm_cosim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dtm_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
