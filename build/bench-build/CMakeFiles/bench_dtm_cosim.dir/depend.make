# Empty dependencies file for bench_dtm_cosim.
# This may be replaced when dependencies are built.
