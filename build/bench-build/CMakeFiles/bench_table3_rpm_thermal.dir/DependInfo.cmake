
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_rpm_thermal.cc" "bench-build/CMakeFiles/bench_table3_rpm_thermal.dir/bench_table3_rpm_thermal.cc.o" "gcc" "bench-build/CMakeFiles/bench_table3_rpm_thermal.dir/bench_table3_rpm_thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hddtherm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dtm/CMakeFiles/hddtherm_dtm.dir/DependInfo.cmake"
  "/root/repo/build/src/roadmap/CMakeFiles/hddtherm_roadmap.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/hddtherm_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hddtherm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hddtherm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hdd/CMakeFiles/hddtherm_hdd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hddtherm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
