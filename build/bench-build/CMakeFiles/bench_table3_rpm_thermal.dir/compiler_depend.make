# Empty compiler generated dependencies file for bench_table3_rpm_thermal.
# This may be replaced when dependencies are built.
