file(REMOVE_RECURSE
  "../bench/bench_table3_rpm_thermal"
  "../bench/bench_table3_rpm_thermal.pdb"
  "CMakeFiles/bench_table3_rpm_thermal.dir/bench_table3_rpm_thermal.cc.o"
  "CMakeFiles/bench_table3_rpm_thermal.dir/bench_table3_rpm_thermal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rpm_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
