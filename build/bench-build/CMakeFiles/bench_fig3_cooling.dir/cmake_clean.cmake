file(REMOVE_RECURSE
  "../bench/bench_fig3_cooling"
  "../bench/bench_fig3_cooling.pdb"
  "CMakeFiles/bench_fig3_cooling.dir/bench_fig3_cooling.cc.o"
  "CMakeFiles/bench_fig3_cooling.dir/bench_fig3_cooling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
