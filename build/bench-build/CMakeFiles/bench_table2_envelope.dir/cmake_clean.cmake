file(REMOVE_RECURSE
  "../bench/bench_table2_envelope"
  "../bench/bench_table2_envelope.pdb"
  "CMakeFiles/bench_table2_envelope.dir/bench_table2_envelope.cc.o"
  "CMakeFiles/bench_table2_envelope.dir/bench_table2_envelope.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
