file(REMOVE_RECURSE
  "../bench/bench_table1_validation"
  "../bench/bench_table1_validation.pdb"
  "CMakeFiles/bench_table1_validation.dir/bench_table1_validation.cc.o"
  "CMakeFiles/bench_table1_validation.dir/bench_table1_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
