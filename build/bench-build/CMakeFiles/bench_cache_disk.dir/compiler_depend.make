# Empty compiler generated dependencies file for bench_cache_disk.
# This may be replaced when dependencies are built.
