file(REMOVE_RECURSE
  "../bench/bench_cache_disk"
  "../bench/bench_cache_disk.pdb"
  "CMakeFiles/bench_cache_disk.dir/bench_cache_disk.cc.o"
  "CMakeFiles/bench_cache_disk.dir/bench_cache_disk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
